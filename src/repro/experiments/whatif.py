"""The ``whatif`` experiment: causal profile + capacity plan.

Backs two CLI surfaces:

* the ``whatif`` experiment name — a traced demo run followed by a
  causal (virtual-speedup) profile and a capacity-planning sweep,
  rendered into the experiments transcript like any table;
* the ``--whatif PLAN`` flag — replay the traced demo run under a JSON
  what-if plan and report the predicted makespan change.

Everything downstream of the single sim run is deterministic replay
(:mod:`repro.obs.whatif`), so repeated invocations produce
byte-identical JSON artifacts.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping

from repro.cluster.presets import fully_heterogeneous
from repro.experiments.config import ExperimentConfig
from repro.experiments.traced import TracedRun, _demo_run
from repro.obs.causal import CausalProfile, causal_profile
from repro.obs.export import _JSON_KW
from repro.obs.whatif import (
    WhatIfPlan,
    capacity_sweep,
    predict,
    sweep_table,
)

__all__ = ["WhatIfResult", "run_whatif", "DEFAULT_SWEEP_SIZES"]

#: Cluster sizes of the default capacity sweep (recorded size is 16).
DEFAULT_SWEEP_SIZES = (4, 8, 12, 16, 24)


@dataclasses.dataclass(frozen=True)
class WhatIfResult:
    """Causal profile + capacity sweep (+ optional plan prediction)."""

    causal: CausalProfile
    sweep: dict[str, Any]
    prediction: dict[str, Any] | None
    plan: WhatIfPlan | None
    files: tuple[Path, ...]

    def to_text(self) -> str:
        parts = [self.causal.to_text(), "", sweep_table(self.sweep)]
        if self.prediction is not None:
            doc = self.prediction
            name = (self.plan.name if self.plan else "") or "<unnamed>"
            parts += [
                "",
                f"what-if plan {name!r}: baseline "
                f"{doc['baseline_makespan_s']:.6f}s -> predicted "
                f"{doc['predicted_makespan_s']:.6f}s "
                f"({doc['delta_pct']:+.2f}%, "
                f"speedup {doc['speedup']:.3f}x)",
            ]
        return "\n".join(parts)


def _write(doc: Mapping[str, Any], path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, **_JSON_KW) + "\n", encoding="utf-8")
    return path


def run_whatif(
    config: ExperimentConfig | None = None,
    plan: WhatIfPlan | None = None,
    traced: TracedRun | None = None,
    outdir: Path | str | None = None,
    sizes: tuple[int, ...] = DEFAULT_SWEEP_SIZES,
    speedup_pct: float = 10.0,
    jobs: int | None = None,
) -> WhatIfResult:
    """Causal-profile and capacity-plan one traced demo run.

    Pass ``traced`` to reuse an existing sim :class:`TracedRun` (the
    CLI reuses the ``--trace`` run); otherwise a fresh demo run
    executes.  With ``outdir`` the JSON artifacts are written as
    ``whatif_causal.json`` / ``whatif_sweep.json`` (and
    ``whatif_predict.json`` when a plan is given).
    """
    cfg = config or ExperimentConfig()
    platform = fully_heterogeneous()
    if traced is not None:
        obs = traced.obs
    else:
        _run, obs, _analysis = _demo_run(cfg, "sim", "atdca", None)
    causal = causal_profile(
        obs, platform, speedup_pct=speedup_pct, jobs=jobs
    )
    sweep = capacity_sweep(obs, platform, sizes, jobs=jobs)
    prediction = predict(obs, platform, plan) if plan is not None else None
    files: list[Path] = []
    if outdir is not None:
        out = Path(outdir)
        files.append(_write(causal.to_dict(), out / "whatif_causal.json"))
        files.append(_write(sweep, out / "whatif_sweep.json"))
        if prediction is not None:
            files.append(_write(prediction, out / "whatif_predict.json"))
    return WhatIfResult(
        causal=causal,
        sweep=sweep,
        prediction=prediction,
        plan=plan,
        files=tuple(files),
    )
