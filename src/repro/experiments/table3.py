"""Table 3 — target-detection accuracy of ATDCA vs UFCLS.

Runs the sequential versions (as the paper's parenthesized times do) on
the WTC scene with ``t = 18`` targets, and reports the SAD between each
known hot spot ('A'–'G') and the most similar detected target, side by
side with the published values.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Mapping

from repro.core.atdca import atdca
from repro.core.ufcls import ufcls
from repro.experiments.config import PAPER_TABLE3, ExperimentConfig
from repro.hsi.metrics import match_targets
from repro.hsi.scene import WTCScene, make_wtc_scene
from repro.perf.report import format_table

__all__ = ["Table3Result", "run_table3"]


@dataclasses.dataclass(frozen=True)
class Table3Result:
    """Measured Table 3.

    Attributes:
        sad: algorithm → hot-spot label → SAD (radians).
        wall_seconds: algorithm → sequential wall time on this machine
            (the paper's parenthesized values are Thunderhead
            single-processor times; scale differs, role is the same).
        paper: the published values for side-by-side comparison.
    """

    sad: Mapping[str, Mapping[str, float]]
    wall_seconds: Mapping[str, float]
    paper: Mapping = dataclasses.field(default_factory=lambda: PAPER_TABLE3)

    def detected_all(self, algorithm: str, tolerance: float = 0.02) -> bool:
        """True if every hot spot was matched within ``tolerance`` radians."""
        return all(v <= tolerance for v in self.sad[algorithm].values())

    def missed(self, algorithm: str, tolerance: float = 0.02) -> list[str]:
        """Hot spots with SAD above ``tolerance`` (detection failures)."""
        return sorted(
            label for label, v in self.sad[algorithm].items() if v > tolerance
        )

    def to_text(self) -> str:
        rows = []
        for label in sorted(self.sad["ATDCA"]):
            rows.append(
                [
                    f"'{label}'",
                    self.sad["ATDCA"][label],
                    self.paper["ATDCA"][label],
                    self.sad["UFCLS"][label],
                    self.paper["UFCLS"][label],
                ]
            )
        title = (
            "Table 3: SAD between detected targets and ground targets\n"
            f"(sequential wall times: ATDCA {self.wall_seconds['ATDCA']:.1f}s, "
            f"UFCLS {self.wall_seconds['UFCLS']:.1f}s; paper "
            f"{self.paper['times']['ATDCA']:.0f}s / "
            f"{self.paper['times']['UFCLS']:.0f}s on one Thunderhead node)"
        )
        return format_table(
            ["Hot spot", "ATDCA", "ATDCA(paper)", "UFCLS", "UFCLS(paper)"],
            rows,
            title=title,
            precision=3,
        )


def run_table3(
    config: ExperimentConfig | None = None, scene: WTCScene | None = None
) -> Table3Result:
    """Measure Table 3 on the configured scene."""
    cfg = config or ExperimentConfig()
    scn = scene or make_wtc_scene(cfg.scene)
    truth_sigs = scn.truth.target_signatures()

    sad: dict[str, dict[str, float]] = {}
    wall: dict[str, float] = {}
    for name, fn in (("ATDCA", atdca), ("UFCLS", ufcls)):
        start = time.perf_counter()
        result = fn(scn.image, cfg.n_targets)
        wall[name] = time.perf_counter() - start
        matches = match_targets(result.signatures, truth_sigs)
        sad[name] = {label: m["sad"] for label, m in matches.items()}
    return Table3Result(sad=sad, wall_seconds=wall)
