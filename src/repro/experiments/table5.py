"""Table 5 — execution times of the hetero/homo algorithm variants on
the four equivalent networks (a projection of the shared grid)."""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.experiments.config import PAPER_TABLE5, ExperimentConfig
from repro.experiments.grid import NetworkGrid, run_network_grid
from repro.perf.report import format_table

__all__ = ["Table5Result", "run_table5"]


@dataclasses.dataclass(frozen=True)
class Table5Result:
    """Measured Table 5 (+ the grid it came from).

    ``times[row_label][network]`` is the makespan in scaled virtual
    seconds.
    """

    times: Mapping[str, Mapping[str, float]]
    grid: NetworkGrid
    paper: Mapping = dataclasses.field(default_factory=lambda: PAPER_TABLE5)

    def ratio(self, algorithm: str, network: str) -> float:
        """Homo/Hetero slowdown for one algorithm on one network."""
        return (
            self.times[f"Homo-{algorithm.upper()}"][network]
            / self.times[f"Hetero-{algorithm.upper()}"][network]
        )

    def to_text(self) -> str:
        networks = self.grid.network_names
        rows = []
        for label in self.grid.row_labels:
            rows.append(
                [label]
                + [self.times[label][n] for n in networks]
                + [self.paper[label][n] if label in self.paper else None
                   for n in networks]
            )
        headers = (
            ["Algorithm"]
            + list(networks)
            + [f"{n} (paper)" for n in networks]
        )
        return format_table(
            headers, rows,
            title="Table 5: execution times (s, scaled virtual time)",
            precision=1,
        )


def run_table5(
    config: ExperimentConfig | None = None, grid: NetworkGrid | None = None
) -> Table5Result:
    """Measure Table 5 (reusing a shared grid when provided)."""
    g = grid or run_network_grid(config)
    times = {
        label: {n: g.cell(label, n).total for n in g.network_names}
        for label in g.row_labels
    }
    return Table5Result(times=times, grid=g)
