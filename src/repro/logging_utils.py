"""Logging helpers.

The library logs under the ``repro`` namespace and never configures the
root logger; applications opt in via :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "enable_console_logging"]

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger in the ``repro`` hierarchy.

    ``name`` may be a module ``__name__`` (already prefixed) or a short
    suffix such as ``"engine"``.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` logger and return it.

    Idempotent: repeated calls reuse the existing handler and only
    adjust the level.
    """
    logger = logging.getLogger(_ROOT_NAME)
    for handler in logger.handlers:
        if getattr(handler, "_repro_console", False):
            handler.setLevel(level)
            logger.setLevel(level)
            return handler
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    handler.setLevel(level)
    handler._repro_console = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
