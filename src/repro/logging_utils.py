"""Logging helpers.

The library logs under the ``repro`` namespace and never configures the
root logger; applications opt in via :func:`enable_console_logging`.
"""

from __future__ import annotations

import json
import logging
import sys

__all__ = ["get_logger", "enable_console_logging"]

_ROOT_NAME = "repro"
_FORMATS = ("text", "json")


class _JsonFormatter(logging.Formatter):
    """One JSON object per record (machine-readable console logs)."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "time": self.formatTime(record),
            "logger": record.name,
            "level": record.levelname,
            "message": record.getMessage(),
        }
        rank = getattr(record, "rank", None)
        if rank is not None:
            payload["rank"] = rank
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def get_logger(name: str) -> logging.Logger:
    """Return a logger in the ``repro`` hierarchy.

    ``name`` may be a module ``__name__`` (already prefixed) or a short
    suffix such as ``"engine"``.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def _make_formatter(fmt: str) -> logging.Formatter:
    if fmt not in _FORMATS:
        raise ValueError(f"unknown log format {fmt!r}; expected one of {_FORMATS}")
    if fmt == "json":
        formatter: logging.Formatter = _JsonFormatter()
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s: %(message)s"
        )
    formatter._repro_fmt = fmt  # type: ignore[attr-defined]
    return formatter


def enable_console_logging(
    level: int = logging.INFO, fmt: str = "text"
) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` logger and return it.

    Idempotent: repeated calls reuse the existing handler and only
    adjust the level (and swap the formatter when ``fmt`` changes).

    Args:
        level: threshold for the handler and the ``repro`` logger.
        fmt: ``"text"`` (human-readable, default) or ``"json"`` (one
            JSON object per record: time, logger, level, message, and
            ``rank`` when the record carries one via
            ``extra={"rank": r}``).
    """
    logger = logging.getLogger(_ROOT_NAME)
    for handler in logger.handlers:
        if getattr(handler, "_repro_console", False):
            handler.setLevel(level)
            logger.setLevel(level)
            if getattr(handler.formatter, "_repro_fmt", None) != fmt:
                handler.setFormatter(_make_formatter(fmt))
            return handler
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(_make_formatter(fmt))
    handler.setLevel(level)
    handler._repro_console = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
