"""Shared plumbing for the parallel (Hetero-/Homo-) algorithms.

Every algorithm of Section 2.2 opens the same way: the master holds the
image cube, derives a WEA row partition, and scatters the blocks (with
optional overlap borders for windowed kernels).  This module implements
that prologue — with the master's packing work charged sequentially and
the transfers costed by the engine — plus the small result containers
programs return, so the four ``parallel_*`` modules contain only their
algorithm-specific middle.

Programs are SPMD callables ``program(ctx, **kwargs)`` run by either
backend (virtual-time :class:`repro.cluster.engine.RankContext` or
wall-clock :class:`repro.mpi.inproc.InprocContext`); only the master's
kwargs carry the image.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Any, Iterator

import numpy as np

from repro.cluster.costs import DEFAULT_COST_MODEL, CostModel
from repro.errors import ConfigurationError, DataError
from repro.hsi.cube import HyperspectralImage
from repro.morphology.halo import HaloBlock, extract_halo_block
from repro.mpi.communicator import Communicator, MessageContext
from repro.obs.trace import tracer_of
from repro.scheduling.static_part import RowPartition
from repro.types import FloatArray

__all__ = [
    "cost_model_of",
    "charge_sequential",
    "charged_kernel",
    "LocalBlock",
    "distribute_row_blocks",
    "master_only",
    "save_detection_checkpoint",
]


def cost_model_of(ctx: MessageContext) -> CostModel:
    """The context's cost model (wall-clock contexts use the default)."""
    return getattr(ctx, "cost_model", DEFAULT_COST_MODEL)


def charge_sequential(ctx: MessageContext, mflops: float) -> None:
    """Charge master-side sequential work (no-op on wall-clock backends)."""
    ctx.compute(mflops, sequential=True)


@contextlib.contextmanager
def charged_kernel(
    ctx: MessageContext,
    name: str,
    mflops: float,
    sequential: bool = False,
) -> Iterator[None]:
    """Charge one named cost-model kernel and bracket its real work.

    Opens a ``"kernel"``-category span carrying the kernel name and the
    charged megaflop count, charges the cost model inside it, then
    yields so the caller's actual numpy work runs inside the same span.
    On the virtual-time engine the span duration therefore *equals* the
    model's prediction; on the wall-clock backend it is the measured
    numpy time — :func:`repro.obs.profile.profile_trace` compares the
    two to calibrate the model.

    Kernel spans are annotations: they are not DAG activities and are
    excluded from the COM/SEQ/PAR ledger cross-check.
    """
    tracer = tracer_of(ctx)
    with tracer.span(
        f"kernel.{name}",
        rank=ctx.rank,
        category="kernel",
        kernel=name,
        mflops=float(mflops),
        sequential=sequential,
    ):
        ctx.compute(mflops, sequential=sequential)
        yield


def save_detection_checkpoint(
    checkpoint: Any,
    comm: Communicator,
    indices: list[int],
    signatures: list[np.ndarray],
    scores: list[float],
    u_matrix: np.ndarray,
) -> None:
    """Master-side per-iteration checkpoint for the target detectors.

    Saved only *after* the iteration's closing broadcast completed, so
    a restart from step ``len(indices)`` is consistent on all ranks.
    No-op for workers or when checkpointing is off.
    """
    if checkpoint is None or not comm.is_master:
        return
    checkpoint.save(
        len(indices),
        {
            "indices": list(indices),
            "signatures": list(signatures),
            "scores": list(scores),
            "u": u_matrix,
        },
    )


def master_only(ctx: MessageContext, value: Any, name: str) -> Any:
    """Validate that ``value`` is present exactly at the master rank."""
    is_master = ctx.rank == ctx.master_rank
    if is_master and value is None:
        raise ConfigurationError(f"master rank must receive {name!r}")
    if not is_master and value is not None:
        raise ConfigurationError(
            f"{name!r} must only be supplied to the master rank"
        )
    return value


@dataclasses.dataclass(frozen=True)
class LocalBlock:
    """A rank's share of the scene after the scatter.

    Attributes:
        halo: the (possibly border-extended) pixel block and its global
            row provenance.
        cols: scene width (shared by all blocks).
        bands: spectral channels.
        total_rows: global scene height.
    """

    halo: HaloBlock
    cols: int
    bands: int
    total_rows: int

    @property
    def core_pixels(self) -> FloatArray:
        """Owned pixels, flattened to ``(n, bands)``."""
        core = self.halo.core_view()
        return core.reshape(-1, self.bands)

    @property
    def n_core_pixels(self) -> int:
        return self.halo.core_rows * self.cols

    def global_flat_index(self, local_flat: int) -> int:
        """Map a flat index into :attr:`core_pixels` to a scene-global
        flat pixel index."""
        if not 0 <= local_flat < self.n_core_pixels:
            raise DataError(
                f"local index {local_flat} outside block of "
                f"{self.n_core_pixels} pixels"
            )
        row, col = divmod(local_flat, self.cols)
        return (self.halo.core_start + row) * self.cols + col


def distribute_row_blocks(
    comm: Communicator,
    image: HyperspectralImage | None,
    partition: RowPartition,
    halo_depth: int = 0,
) -> LocalBlock:
    """The common prologue: master packs and scatters WEA row blocks.

    The master charges the packing sequentially (SEQ), the engine
    charges each block transfer (COM) — blocks with overlap borders
    cost proportionally more wire time, which is Hetero-MORPH's
    redundant-communication trade made visible.

    Args:
        comm: the rank's communicator.
        image: the full cube (master only; ``None`` elsewhere).
        partition: row counts per rank (same object on every rank).
        halo_depth: overlap border rows on each interior side.

    Returns:
        This rank's :class:`LocalBlock`.
    """
    ctx = comm.context
    if partition.size != comm.size:
        raise ConfigurationError(
            f"partition has {partition.size} shares for {comm.size} ranks"
        )
    with tracer_of(ctx).span("scatter", rank=comm.rank, halo=halo_depth):
        if comm.is_master:
            img = master_only(ctx, image, "image")
            if partition.n_rows != img.rows:
                raise ConfigurationError(
                    f"partition covers {partition.n_rows} rows, image has "
                    f"{img.rows}"
                )
            cost = cost_model_of(ctx)
            with charged_kernel(
                ctx,
                "scatter_pack",
                cost.scatter_pack(img.n_pixels * img.bands),
                sequential=True,
            ):
                payloads = []
                for rank in range(comm.size):
                    start, stop = partition.bounds(rank)
                    block = extract_halo_block(
                        img.values, start, stop, halo_depth
                    )
                    payloads.append(
                        (
                            block.data,
                            int(block.core_start),
                            int(block.core_stop),
                            int(block.top),
                            int(block.bottom),
                            int(img.cols),
                            int(img.bands),
                            int(img.rows),
                        )
                    )
            mine = comm.scatter(payloads)
        else:
            master_only(ctx, image, "image")
            mine = comm.scatter(None)
    data, core_start, core_stop, top, bottom, cols, bands, total_rows = mine
    return LocalBlock(
        halo=HaloBlock(
            data=np.asarray(data),
            core_start=core_start,
            core_stop=core_stop,
            top=top,
            bottom=bottom,
        ),
        cols=cols,
        bands=bands,
        total_rows=total_rows,
    )
