"""The paper's algorithms: sequential references and parallel versions."""

from repro.core.atdca import TargetDetectionResult, atdca, atdca_pixels
from repro.core.morph import (
    MorphClassification,
    mei_map,
    morph_classify,
    select_endmembers,
)
from repro.core.nfindr import NFindrResult, nfindr, nfindr_pixels, simplex_volume
from repro.core.parallel_atdca import parallel_atdca_program
from repro.core.parallel_morph import (
    morph_halo_depth,
    parallel_morph_exchange_program,
    parallel_morph_program,
)
from repro.core.parallel_pct import parallel_pct_program
from repro.core.parallel_ufcls import parallel_ufcls_program
from repro.core.pct import PCTClassification, pct_classify, pct_classify_pixels
from repro.core.pipeline import SceneAnalysis, analyze_scene
from repro.core.runner import (
    ALGORITHM_NAMES,
    ParallelRun,
    estimate_row_workload,
    make_fractions,
    make_row_partition,
    run_parallel,
)
from repro.core.sam import SAMClassification, sam_classify
from repro.core.ufcls import fcls_error_image, ufcls, ufcls_pixels
from repro.core.unique import (
    UniqueSet,
    diversity_select,
    greedy_unique,
    merge_unique_sets,
    reduce_to_count,
)

__all__ = [
    "ALGORITHM_NAMES",
    "MorphClassification",
    "NFindrResult",
    "PCTClassification",
    "ParallelRun",
    "SAMClassification",
    "SceneAnalysis",
    "TargetDetectionResult",
    "UniqueSet",
    "analyze_scene",
    "atdca",
    "atdca_pixels",
    "diversity_select",
    "estimate_row_workload",
    "fcls_error_image",
    "greedy_unique",
    "make_fractions",
    "make_row_partition",
    "mei_map",
    "merge_unique_sets",
    "morph_classify",
    "morph_halo_depth",
    "nfindr",
    "nfindr_pixels",
    "sam_classify",
    "simplex_volume",
    "parallel_atdca_program",
    "parallel_morph_exchange_program",
    "parallel_morph_program",
    "parallel_pct_program",
    "parallel_ufcls_program",
    "pct_classify",
    "pct_classify_pixels",
    "reduce_to_count",
    "run_parallel",
    "select_endmembers",
    "ufcls",
    "ufcls_pixels",
]
