"""Hetero-ATDCA (Algorithm 2): parallel automated target detection.

Master/worker OSP target extraction over WEA row partitions:

1. master scatters heterogeneous partitions (prologue in
   :mod:`repro.core.parallel_common`);
2. each worker finds its local brightest pixel; the master reduces the
   candidates and broadcasts the first target;
3. each iteration, workers score their partitions against the current
   target matrix ``U`` with the orthogonal subspace projector, send
   their local argmax (position + signature + score), the master
   re-projects the candidates (sequential, with the explicit projector
   the paper writes), selects the winner and broadcasts it;
4. after ``t`` targets, the master returns the result.

Produces *bit-identical* targets to :func:`repro.core.atdca.atdca` on
the same image: per-partition argmaxes combined with
lowest-global-index tie-breaking equal the global argmax.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.core.atdca import TargetDetectionResult
from repro.core.parallel_common import (
    charged_kernel,
    cost_model_of,
    distribute_row_blocks,
    master_only,
    save_detection_checkpoint as _save_checkpoint,
)
from repro.errors import ConfigurationError
from repro.hsi.cube import HyperspectralImage
from repro.mpi.communicator import Communicator, MessageContext
from repro.obs.trace import tracer_of
from repro.scheduling.static_part import RowPartition
from repro.tuning.registry import resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.adaptive import AdaptiveController
    from repro.faults.recovery import CheckpointStore

__all__ = ["parallel_atdca_program"]


def _local_argmax(scores: np.ndarray) -> tuple[int, float]:
    idx = int(np.argmax(scores))
    return idx, float(scores[idx])


def _select_candidate(candidates: list[tuple[float, int, np.ndarray]]) -> int:
    """Pick the winning (score, global_index, signature) candidate:
    maximum score, ties to the lowest global index (matching the
    sequential argmax convention)."""
    best = None
    for i, (score, gidx, _sig) in enumerate(candidates):
        if best is None:
            best = i
            continue
        b_score, b_gidx, _ = candidates[best]
        if score > b_score or (score == b_score and gidx < b_gidx):
            best = i
    assert best is not None
    return best


def parallel_atdca_program(
    ctx: MessageContext,
    partition: RowPartition,
    n_targets: int,
    image: HyperspectralImage | None = None,
    checkpoint: "CheckpointStore | None" = None,
    adaptive: "AdaptiveController | None" = None,
    osp_variant: str = "incremental",
    checkpoint_every: int = 1,
) -> TargetDetectionResult | None:
    """SPMD body of Hetero-ATDCA; returns the result at the master.

    Args:
        ctx: rank context (sim or in-process backend).
        partition: WEA row partition (same object on all ranks).
        n_targets: ``t``, the number of targets to extract.
        image: the scene — master rank only.
        checkpoint: optional in-memory master checkpoint store
            (fault-tolerant runs).  The master saves its selection
            state after every completed iteration; on restart the
            saved step is broadcast and extraction resumes mid-loop
            instead of from scratch.
        adaptive: optional straggler controller; when set, every rank
            runs one extra collective round after each checkpoint
            (skipped after the final iteration — nothing left to
            rebalance) and a positive decision raises
            :class:`~repro.errors.RepartitionSignal` on all ranks.
        osp_variant: ``osp_step`` registry variant for the per-rank
            scoring state (``"incremental"`` default; ``"reference"``
            is the rank-tolerant scratch baseline).  Both variants pick
            identical targets, and the choice is uniform across ranks.
        checkpoint_every: save the master checkpoint every this many
            completed iterations (the final iteration always saves).
            The predicate is a function of the step number only, so
            every rank agrees on the collective schedule.
    """
    if n_targets < 1:
        raise ConfigurationError(f"n_targets must be >= 1, got {n_targets}")
    if checkpoint_every < 1:
        raise ConfigurationError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    comm = Communicator(ctx)
    cost = cost_model_of(ctx)
    tracer = tracer_of(ctx)
    master_only(ctx, image, "image")

    block = distribute_row_blocks(comm, image, partition)
    local = block.core_pixels
    bands = block.bands
    n_local = local.shape[0]

    indices: list[int] = []
    signatures: list[np.ndarray] = []
    scores: list[float] = []
    start_k = 0
    u_matrix = None
    if checkpoint is not None:
        resume = None
        if comm.is_master:
            saved = checkpoint.load()
            if saved is not None:
                step, state = saved
                indices = list(state["indices"])
                signatures = list(state["signatures"])
                scores = list(state["scores"])
                resume = (step, state["u"])
        resume = comm.bcast(resume)
        if resume is not None:
            start_k, u_matrix = resume

    # -- step 2-3: the brightest pixel ----------------------------------------
    if start_k == 0:
        with tracer.span("atdca.brightest", rank=ctx.rank):
            with charged_kernel(
                ctx, "brightest_search", cost.brightest_search(n_local, bands)
            ):
                if n_local:
                    energies = np.einsum("ij,ij->i", local, local)
                    lidx, score = _local_argmax(energies)
                    candidate = (
                        score, block.global_flat_index(lidx), local[lidx].copy()
                    )
                else:  # an empty share still participates in the collectives
                    candidate = (
                        -np.inf, np.iinfo(np.int64).max, np.zeros(bands)
                    )
            gathered = comm.gather(candidate)

            if comm.is_master:
                with charged_kernel(
                    ctx,
                    "brightest_search",
                    cost.brightest_search(comm.size, bands),
                    sequential=True,
                ):
                    win = _select_candidate(gathered)
                first = gathered[win]
                indices.append(first[1])
                signatures.append(first[2])
                scores.append(first[0])
                u_matrix = first[2][None, :]
            else:
                u_matrix = None
            u_matrix = comm.bcast(u_matrix)
        if 1 % checkpoint_every == 0 or n_targets == 1:
            _save_checkpoint(
                checkpoint, comm, indices, signatures, scores, u_matrix
            )
        start_k = 1
        if adaptive is not None and n_targets > 1:
            adaptive.sync(ctx, comm, step=1)

    # Per-rank OSP state (registry-dispatched): each broadcast appends
    # exactly one row to ``u_matrix``; the incremental variant carries
    # the basis across iterations and orthogonalizes only the newest row
    # (checkpoint resumes replay the saved rows in order — the same
    # arithmetic as a live run).
    osp_impl = resolve("osp_step", osp_variant).implementation()
    osp = osp_impl(local) if n_local else None
    if osp is not None and u_matrix is not None:
        for row in np.atleast_2d(u_matrix):
            osp.add_target(row)

    # -- steps 4-6: iterative OSP extraction ------------------------------------
    for k in range(start_k, n_targets):
        with tracer.span("atdca.iteration", rank=ctx.rank, k=k):
            with charged_kernel(
                ctx, "osp_scores", cost.osp_scores(n_local, bands, k)
            ):
                if n_local:
                    energies = osp.residual_energy()
                    lidx, score = _local_argmax(energies)
                    candidate = (
                        score, block.global_flat_index(lidx), local[lidx].copy()
                    )
                else:
                    candidate = (
                        -np.inf, np.iinfo(np.int64).max, np.zeros(bands)
                    )
            gathered = comm.gather(candidate)
            if comm.is_master:
                # The paper's master applies P_U^⊥ to the candidate pixels —
                # with the explicit N×N projector, a sequential step.
                with charged_kernel(
                    ctx,
                    "master_osp_selection",
                    cost.master_osp_selection(bands, k, comm.size),
                    sequential=True,
                ):
                    win = _select_candidate(gathered)
                chosen = gathered[win]
                indices.append(chosen[1])
                signatures.append(chosen[2])
                scores.append(chosen[0])
                new_u = np.vstack([u_matrix, chosen[2][None, :]])
            else:
                new_u = None
            u_matrix = comm.bcast(new_u)
            if osp is not None:
                # The broadcast grew U by exactly one row; fold it in.
                osp.add_target(u_matrix[-1])
        if (k + 1) % checkpoint_every == 0 or k + 1 == n_targets:
            _save_checkpoint(
                checkpoint, comm, indices, signatures, scores, u_matrix
            )
        if adaptive is not None and k + 1 < n_targets:
            adaptive.sync(ctx, comm, step=k + 1)

    if not comm.is_master:
        return None
    idx = np.asarray(indices, dtype=np.int64)
    rows, cols = np.divmod(idx, block.cols)
    return TargetDetectionResult(
        flat_indices=idx,
        signatures=np.vstack(signatures),
        scores=np.asarray(scores),
        positions=np.stack([rows, cols], axis=1),
    )
