"""SAD-based unique (spectrally distinct) signature sets.

Both classification algorithms build a small set of mutually distinct
signatures: Hetero-PCT step 2 forms "a unique spectral set by
calculating the SAD distance for all vector pairs", and Hetero-MORPH
step 3 merges worker candidates into "a unique spectral set of p ≤ c
pixel vectors".  This module provides the two operations they need:

* a greedy streaming selection that keeps a signature only when its
  SAD to everything already kept exceeds a threshold;
* an agglomerative reduction that merges the closest pair until at
  most ``c`` signatures remain (the paper's "combined, one pair at a
  time" step).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.hsi.metrics import sad_pairwise, sad_to_references
from repro.types import FloatArray, IntArray

__all__ = [
    "UniqueSet",
    "greedy_unique",
    "greedy_unique_reference",
    "reduce_to_count",
    "diversity_select",
    "merge_unique_sets",
]


@dataclasses.dataclass(frozen=True)
class UniqueSet:
    """A distinct-signature set with provenance.

    Attributes:
        signatures: ``(k, bands)`` representative spectra.
        indices: for each representative, the index (into whatever pool
            it was drawn from) of the pixel that represents it.
        scores: optional per-member quality score (e.g. MEI) used to
            order master-side merging.
    """

    signatures: FloatArray
    indices: IntArray
    scores: FloatArray | None = None

    def __post_init__(self) -> None:
        sig = np.asarray(self.signatures, dtype=float)
        idx = np.asarray(self.indices, dtype=np.int64)
        if sig.ndim != 2 or idx.ndim != 1 or sig.shape[0] != idx.shape[0]:
            raise DataError(
                f"inconsistent unique set: signatures {sig.shape}, "
                f"indices {idx.shape}"
            )
        object.__setattr__(self, "signatures", sig)
        object.__setattr__(self, "indices", idx)
        if self.scores is not None:
            sc = np.asarray(self.scores, dtype=float)
            if sc.shape != (sig.shape[0],):
                raise DataError(
                    f"scores shape {sc.shape} != ({sig.shape[0]},)"
                )
            object.__setattr__(self, "scores", sc)

    @property
    def count(self) -> int:
        return int(self.signatures.shape[0])


def greedy_unique(
    pixels: FloatArray,
    threshold: float,
    max_keep: int | None = None,
) -> UniqueSet:
    """Streaming distinct selection: keep pixel ``i`` iff its SAD to every
    kept signature exceeds ``threshold``.

    Scan order is pixel order (deterministic).  Vectorized as survivor
    filtering: each time a signature is kept, one batched
    :func:`sad_to_references` matrix product eliminates every remaining
    candidate within ``threshold`` of it — valid because the kept set
    only grows, so a candidate eliminated now could never be re-admitted
    later.  O(k·n·bands) for ``k`` kept signatures, no per-pixel Python
    loop, and the exact same set as the one-candidate-at-a-time scan
    (the per-pair angle test is unchanged, just batched).

    Args:
        pixels: ``(n, bands)`` candidate pool.
        threshold: minimum SAD (radians) between kept signatures.
        max_keep: optional hard cap on the number kept.
    """
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim != 2 or pix.shape[0] == 0:
        raise DataError(f"expected non-empty (n, bands), got {pix.shape}")
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    if max_keep is not None and max_keep < 1:
        raise ConfigurationError(f"max_keep must be >= 1, got {max_keep}")
    limit = pix.shape[0] if max_keep is None else max_keep
    kept_rows: list[int] = [0]
    latest = 0
    survivors = np.arange(1, pix.shape[0])
    while survivors.size and len(kept_rows) < limit:
        angles = sad_to_references(pix[survivors], pix[latest : latest + 1])
        survivors = survivors[angles[:, 0] > threshold]
        if survivors.size:
            latest = int(survivors[0])
            kept_rows.append(latest)
            survivors = survivors[1:]
    idx = np.asarray(kept_rows)
    return UniqueSet(signatures=pix[idx].copy(), indices=idx)


def greedy_unique_reference(
    pixels: FloatArray,
    threshold: float,
    max_keep: int | None = None,
) -> UniqueSet:
    """The one-candidate-at-a-time scan :func:`greedy_unique` batches.

    Walks the pool in pixel order and keeps candidate ``i`` iff its SAD
    to *every* kept signature exceeds ``threshold`` — the literal
    reading of the paper's step.  O(k·n·bands) like the vectorized
    filter but with a Python-level loop over candidates; registered as
    the ``unique_filter`` reference the microbench verifies the
    vectorized survivor filtering against (the per-pair angle test is
    identical, so the kept sets match bit for bit).
    """
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim != 2 or pix.shape[0] == 0:
        raise DataError(f"expected non-empty (n, bands), got {pix.shape}")
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    if max_keep is not None and max_keep < 1:
        raise ConfigurationError(f"max_keep must be >= 1, got {max_keep}")
    limit = pix.shape[0] if max_keep is None else max_keep
    kept_rows: list[int] = [0]
    for i in range(1, pix.shape[0]):
        if len(kept_rows) >= limit:
            break
        angles = sad_to_references(pix[i : i + 1], pix[kept_rows])
        if bool((angles[0] > threshold).all()):
            kept_rows.append(i)
    idx = np.asarray(kept_rows)
    return UniqueSet(signatures=pix[idx].copy(), indices=idx)


def reduce_to_count(unique: UniqueSet, count: int) -> UniqueSet:
    """Merge the closest pair (drop the later member) until ≤ ``count``.

    This is the paper's one-pair-at-a-time combination; keeping the
    earlier member of each closest pair makes the reduction
    deterministic and keeps provenance meaningful.
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    sig = unique.signatures.copy()
    idx = unique.indices.copy()
    scores = None if unique.scores is None else unique.scores.copy()
    while sig.shape[0] > count:
        angles = sad_pairwise(sig)
        np.fill_diagonal(angles, np.inf)
        flat = int(np.argmin(angles))
        a, b = divmod(flat, sig.shape[0])
        drop = max(a, b)  # keep the earlier (first-seen / higher-score)
        keep_mask = np.ones(sig.shape[0], dtype=bool)
        keep_mask[drop] = False
        sig = sig[keep_mask]
        idx = idx[keep_mask]
        if scores is not None:
            scores = scores[keep_mask]
    return UniqueSet(signatures=sig, indices=idx, scores=scores)


def diversity_select(unique: UniqueSet, count: int) -> UniqueSet:
    """Farthest-point selection: keep ``count`` members maximizing the
    minimum pairwise SAD of the kept set.

    Seeded with the highest-score member (first member when unscored),
    then greedily adds the candidate whose minimum SAD to the kept set
    is largest.  Unlike closest-pair merging, this cannot cascade away
    a moderately distinct class while hoarding slots on a cluster of
    mutually extreme outliers — it is the standard reduction used by
    sequential endmember-extraction methods.
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    k = unique.count
    if k <= count:
        return unique
    angles = sad_pairwise(unique.signatures)
    seed = 0 if unique.scores is None else int(np.argmax(unique.scores))
    chosen = [seed]
    min_dist = angles[seed].copy()
    min_dist[seed] = -np.inf
    while len(chosen) < count:
        nxt = int(np.argmax(min_dist))
        if min_dist[nxt] <= 0:
            break  # every remaining candidate is a duplicate of the kept set
        chosen.append(nxt)
        np.minimum(min_dist, angles[nxt], out=min_dist)
        min_dist[nxt] = -np.inf
    chosen_idx = np.asarray(sorted(chosen))
    return UniqueSet(
        signatures=unique.signatures[chosen_idx],
        indices=unique.indices[chosen_idx],
        scores=None if unique.scores is None else unique.scores[chosen_idx],
    )


def merge_unique_sets(
    sets: list[UniqueSet],
    threshold: float,
    count: int | None = None,
    strategy: str = "diversity",
) -> UniqueSet:
    """Combine per-worker unique sets into one (master-side step).

    Concatenates all members (indices are preserved as given — callers
    should pre-globalize them), re-applies the greedy distinctness
    filter across the union, then optionally reduces to ``count``.

    When every input set carries scores, the union is scanned in
    descending score order, so the greedy filter keeps the
    highest-quality representative of each signature cluster and the
    reduction prefers dropping low-score members.

    Args:
        strategy: ``"diversity"`` (farthest-point, default) or
            ``"merge"`` (one-closest-pair-at-a-time) for the final
            reduction to ``count``.
    """
    if strategy not in ("diversity", "merge"):
        raise ConfigurationError(f"unknown reduction strategy {strategy!r}")
    if not sets:
        raise DataError("no unique sets to merge")
    all_sig = np.vstack([s.signatures for s in sets])
    all_idx = np.concatenate([s.indices for s in sets])
    if all(s.scores is not None for s in sets):
        all_scores = np.concatenate([s.scores for s in sets])
        order = np.argsort(-all_scores, kind="stable")
        all_sig = all_sig[order]
        all_idx = all_idx[order]
        all_scores = all_scores[order]
    else:
        all_scores = None
    filtered = greedy_unique(all_sig, threshold)
    merged = UniqueSet(
        signatures=filtered.signatures,
        indices=all_idx[filtered.indices],
        scores=None if all_scores is None else all_scores[filtered.indices],
    )
    if count is not None and merged.count > count:
        if strategy == "diversity":
            merged = diversity_select(merged, count)
        else:
            merged = reduce_to_count(merged, count)
    return merged
