"""Hetero-MORPH (Algorithm 5): parallel morphological classification.

1. the master scatters WEA partitions *with overlap borders* sized for
   ``I_max`` passes of the structuring element — redundant rows traded
   for zero inter-iteration communication (the paper's design point);
2. each worker runs the multiscale MEI sweep on its extended block and
   selects its ``c`` highest-MEI spectrally distinct candidates;
3. the master merges candidates into a unique endmember set of
   ``p ≤ c`` members (pairwise SAD) and broadcasts it;
4. workers label their core pixels by SAD against the endmembers;
5. the master gathers the label blocks into the classification map.
"""

from __future__ import annotations

import numpy as np

from repro.core.morph import (
    DEFAULT_DEDUP_THRESHOLD,
    MorphClassification,
    local_endmember_candidates,
    mei_map,
)
from repro.core.parallel_common import (
    charged_kernel,
    cost_model_of,
    distribute_row_blocks,
    master_only,
)
from repro.core.unique import UniqueSet, merge_unique_sets
from repro.errors import ConfigurationError
from repro.hsi.cube import HyperspectralImage
from repro.hsi.metrics import sad_to_references
from repro.morphology.halo import halo_depth
from repro.morphology.structuring import StructuringElement, square
from repro.mpi.communicator import Communicator, MessageContext
from repro.obs.trace import tracer_of
from repro.scheduling.static_part import RowPartition

__all__ = [
    "parallel_morph_program",
    "parallel_morph_exchange_program",
    "morph_halo_depth",
]


def morph_halo_depth(
    se: StructuringElement, iterations: int, exact: bool = False
) -> int:
    """Overlap rows each side of a partition.

    The paper sizes overlap borders "to avoid accesses outside the
    local image domain" — the window reach, ``radius`` (the default
    here).  Under iterated dilation the outermost halo rows go stale by
    one radius per pass, so block-edge MEI values are approximate;
    the paper trades exactly this for zero inter-iteration
    communication, and the classification impact is marginal (pinned by
    the test-suite).

    ``exact=True`` instead uses ``radius × (2·I_max + 1)``, which makes
    core MEI values match the sequential computation exactly: the
    edge-replicated padding contaminates the D_B map within ``r`` of the
    extended edge, the dilation doubles that reach every pass
    (``2r·j`` after pass ``j``), and the final pass's credit scatter
    adds one more window reach.
    """
    if exact:
        return (2 * iterations + 1) * se.radius
    return se.radius


def parallel_morph_program(
    ctx: MessageContext,
    partition: RowPartition,
    n_classes: int,
    image: HyperspectralImage | None = None,
    se: StructuringElement | None = None,
    iterations: int = 5,
    dedup_threshold: float = DEFAULT_DEDUP_THRESHOLD,
    exact_halo: bool = False,
) -> MorphClassification | None:
    """SPMD body of Hetero-MORPH; returns the classification at the master.

    ``exact_halo`` selects the deep overlap border that makes core MEI
    values equal the sequential computation (see
    :func:`morph_halo_depth`); the default is the paper's single-reach
    border.
    """
    if n_classes < 1:
        raise ConfigurationError(f"n_classes must be >= 1, got {n_classes}")
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    se = se or square(3)
    comm = Communicator(ctx)
    cost = cost_model_of(ctx)
    tracer = tracer_of(ctx)
    master_only(ctx, image, "image")

    depth = morph_halo_depth(se, iterations, exact=exact_halo)
    block = distribute_row_blocks(comm, image, partition, halo_depth=depth)
    extended = block.halo.data
    bands = block.bands
    n_extended = extended.shape[0] * extended.shape[1]

    # -- step 2: the multiscale MEI sweep (redundant halo rows included) -------
    with tracer.span("morph.mei", rank=ctx.rank, iterations=iterations):
        with charged_kernel(
            ctx,
            "morph_iteration",
            cost.morph_iteration(n_extended, bands, se.size) * iterations,
        ):
            mei_extended = mei_map(extended, se, iterations)
            mei_core = block.halo.core_view(mei_extended)
            core = block.halo.core_view()

    # -- step 3: master forms the unique endmember set --------------------------
    with tracer.span("morph.endmembers", rank=ctx.rank):
        pool = min(block.n_core_pixels, 8 * n_classes)
        with charged_kernel(
            ctx, "sad_pairs", cost.sad_pairs(pool * min(n_classes, pool), bands)
        ):
            if block.n_core_pixels:
                candidates = local_endmember_candidates(
                    core,
                    mei_core,
                    n_classes,
                    row_offset=block.halo.core_start,
                    total_cols=block.cols,
                    dedup_threshold=dedup_threshold,
                )
                payload = (
                    candidates.signatures, candidates.indices, candidates.scores
                )
            else:
                payload = None
        gathered = comm.gather(payload)

        if comm.is_master:
            sets = [
                UniqueSet(signatures=sig, indices=idx, scores=sc)
                for item in gathered
                if item is not None
                for sig, idx, sc in [item]
            ]
            total = sum(s.count for s in sets)
            with charged_kernel(
                ctx,
                "dedup_unique_set",
                cost.dedup_unique_set(total, bands, kept=n_classes),
                sequential=True,
            ):
                endmembers = merge_unique_sets(
                    sets, dedup_threshold, count=n_classes
                )
            em_payload = (
                endmembers.signatures,
                endmembers.indices,
                endmembers.scores,
            )
        else:
            em_payload = None
        em_payload = comm.bcast(em_payload)
        endmembers = UniqueSet(
            signatures=em_payload[0], indices=em_payload[1], scores=em_payload[2]
        )

    # -- step 4: parallel labelling ----------------------------------------------
    with tracer.span("morph.classify", rank=ctx.rank):
        with charged_kernel(
            ctx,
            "classify_by_sad",
            cost.classify_by_sad(block.n_core_pixels, bands, endmembers.count),
        ):
            if block.n_core_pixels:
                angles = sad_to_references(
                    block.core_pixels, endmembers.signatures
                )
                labels = np.argmin(angles, axis=1).astype(np.int64)
            else:
                labels = np.empty(0, dtype=np.int64)
            mei_flat = mei_core.reshape(-1)
        gathered_labels = comm.gather((labels, mei_flat))

    # -- step 5: master assembles the classification matrix ------------------------
    if not comm.is_master:
        return None
    label_map = np.concatenate([lab for lab, _ in gathered_labels]).reshape(
        block.total_rows, block.cols
    )
    mei_full = np.concatenate([m for _, m in gathered_labels]).reshape(
        block.total_rows, block.cols
    )
    return MorphClassification(
        labels=label_map, endmembers=endmembers, mei=mei_full
    )


def _exchange_halos(
    comm: Communicator,
    block,
    core: np.ndarray,
    depth: int,
    tag_base: int,
) -> np.ndarray:
    """Refresh a rank's halo rows with its neighbours' current core rows.

    Two serialized sweeps (downward then upward) — chains, not cycles,
    so rendezvous sends cannot deadlock.  Returns the extended block
    ``[top halo | core | bottom halo]`` for the next iteration.
    """
    rank, size = comm.rank, comm.size
    top = None
    bottom = None
    # Downward sweep: rank r ships its bottom `depth` core rows to r+1.
    if rank > 0 and block.halo.top > 0:
        top = comm.recv(rank - 1, tag=tag_base)
    if rank < size - 1 and block.halo.bottom > 0:
        comm.send(rank + 1, core[-depth:].copy(), tag=tag_base)
    # Upward sweep: rank r ships its top `depth` core rows to r-1.
    if rank < size - 1 and block.halo.bottom > 0:
        bottom = comm.recv(rank + 1, tag=tag_base + 1)
    if rank > 0 and block.halo.top > 0:
        comm.send(rank - 1, core[:depth].copy(), tag=tag_base + 1)
    parts = []
    if top is not None:
        parts.append(np.asarray(top))
    parts.append(core)
    if bottom is not None:
        parts.append(np.asarray(bottom))
    return np.concatenate(parts, axis=0)


def parallel_morph_exchange_program(
    ctx: MessageContext,
    partition: RowPartition,
    n_classes: int,
    image: HyperspectralImage | None = None,
    se: StructuringElement | None = None,
    iterations: int = 5,
    dedup_threshold: float = DEFAULT_DEDUP_THRESHOLD,
) -> MorphClassification | None:
    """Hetero-MORPH with per-iteration *halo exchange* instead of
    redundant overlap computation.

    The design alternative the paper argues against: keep only a
    single-reach halo, and after every dilation pass exchange boundary
    rows with the spatial neighbours so the next pass sees fresh data.
    Communication per rank per iteration is ``2·r·cols·bands`` values
    over the (possibly slow, serialized) links — the ablation benchmark
    measures exactly the trade the paper describes, and this variant's
    halo data is always *fresh*, so its MEI quality matches the
    exact-halo redundant variant.
    """
    if n_classes < 1:
        raise ConfigurationError(f"n_classes must be >= 1, got {n_classes}")
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    se = se or square(3)
    comm = Communicator(ctx)
    cost = cost_model_of(ctx)
    tracer = tracer_of(ctx)
    master_only(ctx, image, "image")

    depth = se.radius
    block = distribute_row_blocks(comm, image, partition, halo_depth=depth)
    extended = block.halo.data
    bands = block.bands
    cols = block.cols

    from repro.morphology.ops import mei_scores, morph_extrema

    mei_ext = np.zeros(extended.shape[:2])
    current = extended
    for step in range(iterations):
        with tracer.span("morph.iteration", rank=ctx.rank, k=step):
            n_ext = current.shape[0] * cols
            with charged_kernel(
                ctx, "morph_iteration", cost.morph_iteration(n_ext, bands, se.size)
            ):
                extrema = morph_extrema(current, se)
                scores = mei_scores(extrema)
            if mei_ext.shape != scores.shape:
                mei_ext = np.zeros_like(scores)
            np.maximum(mei_ext, scores, out=mei_ext)
            if step + 1 < iterations:
                # Keep the dilated core; refresh halos from the neighbours.
                core_rows = block.halo.core_rows
                start = block.halo.top if current.shape[0] > core_rows else 0
                dilated_core = extrema.dilated[start : start + core_rows]
                current = _exchange_halos(
                    comm, block, dilated_core, depth, tag_base=200 + 2 * step
                )

    core_rows = block.halo.core_rows
    start = block.halo.top if mei_ext.shape[0] > core_rows else 0
    mei_core = mei_ext[start : start + core_rows]
    core = block.halo.core_view()

    with tracer.span("morph.endmembers", rank=ctx.rank):
        pool = min(block.n_core_pixels, 8 * n_classes)
        with charged_kernel(
            ctx, "sad_pairs", cost.sad_pairs(pool * min(n_classes, pool), bands)
        ):
            if block.n_core_pixels:
                candidates = local_endmember_candidates(
                    core, mei_core, n_classes,
                    row_offset=block.halo.core_start,
                    total_cols=cols,
                    dedup_threshold=dedup_threshold,
                )
                payload = (
                    candidates.signatures, candidates.indices, candidates.scores
                )
            else:
                payload = None
        gathered = comm.gather(payload)

        if comm.is_master:
            sets = [
                UniqueSet(signatures=sig, indices=idx, scores=sc)
                for item in gathered
                if item is not None
                for sig, idx, sc in [item]
            ]
            total = sum(s.count for s in sets)
            with charged_kernel(
                ctx,
                "dedup_unique_set",
                cost.dedup_unique_set(total, bands, kept=n_classes),
                sequential=True,
            ):
                endmembers = merge_unique_sets(
                    sets, dedup_threshold, count=n_classes
                )
            em_payload = (
                endmembers.signatures, endmembers.indices, endmembers.scores
            )
        else:
            em_payload = None
        em_payload = comm.bcast(em_payload)
        endmembers = UniqueSet(
            signatures=em_payload[0], indices=em_payload[1], scores=em_payload[2]
        )

    with tracer.span("morph.classify", rank=ctx.rank):
        with charged_kernel(
            ctx,
            "classify_by_sad",
            cost.classify_by_sad(block.n_core_pixels, bands, endmembers.count),
        ):
            if block.n_core_pixels:
                angles = sad_to_references(
                    block.core_pixels, endmembers.signatures
                )
                labels = np.argmin(angles, axis=1).astype(np.int64)
            else:
                labels = np.empty(0, dtype=np.int64)
        gathered_labels = comm.gather((labels, mei_core.reshape(-1)))

    if not comm.is_master:
        return None
    label_map = np.concatenate([lab for lab, _ in gathered_labels]).reshape(
        block.total_rows, cols
    )
    mei_full = np.concatenate([m for _, m in gathered_labels]).reshape(
        block.total_rows, cols
    )
    return MorphClassification(
        labels=label_map, endmembers=endmembers, mei=mei_full
    )
