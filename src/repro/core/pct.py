"""Sequential PCT classification (Algorithm 4's computational content).

Pipeline: (i) build a spectrally *unique set* of ``c`` representative
pixel vectors via pairwise SAD; (ii) compute the band mean and
covariance, eigendecompose, and keep the top-``c`` principal
directions; (iii) project every pixel (and the unique set) into the
reduced space; (iv) label each pixel with its most similar unique
vector under SAD — *in the PCT-reduced space*, which is precisely why
PCT loses to MORPH on similar debris classes (reduced-space angles
conflate what full-space angles separate).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.unique import UniqueSet, greedy_unique, reduce_to_count
from repro.errors import ConfigurationError, ShapeError
from repro.hsi.cube import HyperspectralImage
from repro.hsi.metrics import sad_to_references
from repro.linalg.pca import apply_pct, covariance_matrix, mean_vector, pct_transform
from repro.types import FloatArray, IntArray

__all__ = ["PCTClassification", "pct_unique_set", "pct_classify_pixels", "pct_classify"]

#: Default SAD distinctness threshold (radians) for the unique set.
DEFAULT_UNIQUE_THRESHOLD = 0.08


@dataclasses.dataclass(frozen=True)
class PCTClassification:
    """Output of PCT classification.

    Attributes:
        labels: per-pixel class index into ``unique.signatures``
            (flat ``(n,)`` or ``(rows, cols)`` for cube input).
        unique: the representative signature set (full spectral space).
        mean: band mean used for centring.
        transform: ``(c, bands)`` principal directions.
        eigenvalues: full covariance spectrum (descending).
    """

    labels: IntArray
    unique: UniqueSet
    mean: FloatArray
    transform: FloatArray
    eigenvalues: FloatArray

    @property
    def n_classes(self) -> int:
        return self.unique.count


def pct_unique_set(
    pixels: FloatArray,
    n_classes: int,
    threshold: float = DEFAULT_UNIQUE_THRESHOLD,
    strata: int = 16,
) -> UniqueSet:
    """Steps 2–3: the unique spectral set, reduced to ``n_classes``.

    Mirrors the parallel algorithm's structure: the pixel stream is
    split into ``strata`` contiguous chunks (the workers' partitions),
    each runs the greedy SAD-distinct selection, and the master merges
    the per-chunk sets "one pair at a time" down to ``n_classes``
    members (fewer if the scene holds fewer distinct signatures).
    """
    if n_classes < 1:
        raise ConfigurationError(f"n_classes must be >= 1, got {n_classes}")
    if strata < 1:
        raise ConfigurationError(f"strata must be >= 1, got {strata}")
    pix = np.asarray(pixels, dtype=float)
    n = pix.shape[0]
    strata = min(strata, n)
    bounds = np.linspace(0, n, strata + 1).astype(int)
    parts = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        if b <= a:
            continue
        local = greedy_unique(pix[a:b], threshold, max_keep=4 * n_classes)
        parts.append(
            UniqueSet(signatures=local.signatures, indices=local.indices + a)
        )
    from repro.core.unique import merge_unique_sets

    return merge_unique_sets(parts, threshold, count=n_classes)


def pct_classify_pixels(
    pixels: FloatArray,
    n_classes: int,
    threshold: float = DEFAULT_UNIQUE_THRESHOLD,
) -> PCTClassification:
    """Run the full PCT classifier on ``(n, bands)`` pixels."""
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim != 2 or pix.shape[0] == 0:
        raise ShapeError(f"expected non-empty (n, bands), got {pix.shape}")
    bands = pix.shape[1]
    if n_classes > bands:
        raise ConfigurationError(
            f"n_classes ({n_classes}) cannot exceed the band count ({bands})"
        )

    unique = pct_unique_set(pix, n_classes, threshold)
    mean = mean_vector(pix)
    cov = covariance_matrix(pix, mean)
    transform, eigenvalues = pct_transform(cov, n_components=unique.count)

    reduced = apply_pct(pix, mean, transform)
    reduced_refs = apply_pct(unique.signatures, mean, transform)
    # SAD needs non-zero vectors; shift the reduced space to be safely
    # positive (a common trick: angles are compared consistently for
    # pixels and references alike).
    offset = reduced.min(axis=0)
    reduced = reduced - offset + 1.0
    reduced_refs = reduced_refs - offset + 1.0
    angles = sad_to_references(reduced, reduced_refs)
    labels = np.argmin(angles, axis=1).astype(np.int64)
    return PCTClassification(
        labels=labels,
        unique=unique,
        mean=mean,
        transform=transform,
        eigenvalues=eigenvalues,
    )


def pct_classify(
    image: HyperspectralImage,
    n_classes: int,
    threshold: float = DEFAULT_UNIQUE_THRESHOLD,
) -> PCTClassification:
    """Run PCT classification on a cube; labels come back 2-D."""
    result = pct_classify_pixels(image.flatten_pixels(), n_classes, threshold)
    return dataclasses.replace(
        result, labels=result.labels.reshape(image.rows, image.cols)
    )
