"""Sequential ATDCA: automated target detection and classification.

The reference implementation of Algorithm 2's computational content,
single-processor, exactly as the paper's sequential baseline ("really
sequential, not parallel running on one processor").  The parallel
versions in :mod:`repro.core.parallel_atdca` must produce identical
target sets on the same input.

The algorithm: seed with the brightest pixel (max ``xᵀx``), then
repeatedly add the pixel with the largest energy in the orthogonal
complement of the span of the targets found so far.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.hsi.cube import HyperspectralImage
from repro.linalg.osp import brightest_pixel_index
from repro.tuning.registry import resolve
from repro.types import FloatArray, IntArray

__all__ = ["TargetDetectionResult", "atdca_pixels", "atdca"]


@dataclasses.dataclass(frozen=True)
class TargetDetectionResult:
    """Detected targets, in extraction order.

    Attributes:
        flat_indices: ``(t,)`` indices into the flattened pixel list.
        signatures: ``(t, bands)`` detected target spectra.
        scores: the selection score of each target at the iteration it
            was extracted (brightness for the first, residual OSP/error
            energy after).
        positions: ``(t, 2)`` (row, col) coordinates, present when the
            input was an image cube.
    """

    flat_indices: IntArray
    signatures: FloatArray
    scores: FloatArray
    positions: IntArray | None = None

    @property
    def n_targets(self) -> int:
        return int(self.flat_indices.shape[0])


def _check_inputs(pixels: FloatArray, n_targets: int) -> FloatArray:
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim != 2:
        raise ShapeError(f"expected (n, bands), got {pix.shape}")
    if n_targets < 1:
        raise ConfigurationError(f"n_targets must be >= 1, got {n_targets}")
    if n_targets > pix.shape[0]:
        raise ConfigurationError(
            f"cannot extract {n_targets} targets from {pix.shape[0]} pixels"
        )
    return pix


def atdca_pixels(
    pixels: FloatArray,
    n_targets: int,
    osp_variant: str = "incremental",
) -> TargetDetectionResult:
    """Run ATDCA on a flat ``(n, bands)`` pixel matrix.

    Returns targets in extraction order; ties in the argmax resolve to
    the lowest pixel index (numpy convention), making results
    deterministic.

    ``osp_variant`` names the ``osp_step`` registry variant to dispatch
    through: ``"incremental"`` (default) carries the orthonormal basis
    of span(U) across iterations — one Gram–Schmidt step per new target
    instead of a full QR per iteration, O(n·bands) amortized per target
    — while ``"reference"`` recomputes from scratch each query (the
    rank-tolerant baseline the planner routes degenerate inputs to).
    Both variants pick identical targets.
    """
    pix = _check_inputs(pixels, n_targets)
    indices: list[int] = []
    scores: list[float] = []

    first = brightest_pixel_index(pix)
    indices.append(first)
    scores.append(float(pix[first] @ pix[first]))

    osp = resolve("osp_step", osp_variant).implementation()(pix)
    osp.add_target(pix[first])
    for k in range(1, n_targets):
        energy = osp.residual_energy()
        nxt = int(np.argmax(energy))
        indices.append(nxt)
        scores.append(float(energy[nxt]))
        if k + 1 < n_targets:
            osp.add_target(pix[nxt])

    idx = np.asarray(indices, dtype=np.int64)
    return TargetDetectionResult(
        flat_indices=idx,
        signatures=pix[idx].copy(),
        scores=np.asarray(scores),
    )


def atdca(
    image: HyperspectralImage,
    n_targets: int,
    osp_variant: str = "incremental",
) -> TargetDetectionResult:
    """Run ATDCA on an image cube; adds (row, col) positions."""
    result = atdca_pixels(image.flatten_pixels(), n_targets, osp_variant)
    rows, cols = np.divmod(result.flat_indices, image.cols)
    return dataclasses.replace(
        result, positions=np.stack([rows, cols], axis=1)
    )
