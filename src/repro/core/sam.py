"""Supervised SAM classification against a spectral library.

The paper uses SAD/SAM throughout as its similarity metric; the
corresponding *supervised* classifier — label every pixel with the most
spectrally similar library signature, optionally rejecting pixels whose
best angle exceeds a threshold — is the standard operational tool for
mapping when reference spectra exist (exactly what USGS produced for
the WTC deposits).  Provided for downstream users; the paper's own
classifiers are unsupervised.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.hsi.cube import HyperspectralImage
from repro.hsi.groundtruth import UNLABELLED
from repro.hsi.metrics import sad_to_references
from repro.hsi.spectra import SpectralLibrary
from repro.types import FloatArray, IntArray

__all__ = ["SAMClassification", "sam_classify"]


@dataclasses.dataclass(frozen=True)
class SAMClassification:
    """Supervised classification outcome.

    Attributes:
        labels: ``(rows, cols)`` indices into ``class_names``
            (:data:`~repro.hsi.groundtruth.UNLABELLED` where rejected).
        angles: the winning SAD per pixel (radians).
        class_names: the reference labels, index-aligned.
        rejection_threshold: the angle cutoff used (None = no rejection).
    """

    labels: IntArray
    angles: FloatArray
    class_names: tuple[str, ...]
    rejection_threshold: float | None

    @property
    def rejected_fraction(self) -> float:
        return float(np.mean(self.labels == UNLABELLED))


def sam_classify(
    image: HyperspectralImage,
    references: SpectralLibrary | FloatArray,
    class_names: list[str] | None = None,
    rejection_threshold: float | None = None,
) -> SAMClassification:
    """Label each pixel with its most similar reference signature.

    Args:
        image: the scene.
        references: a :class:`SpectralLibrary` (class names taken from
            it) or a ``(k, bands)`` signature matrix.
        class_names: names when ``references`` is a plain matrix.
        rejection_threshold: pixels whose best SAD exceeds this are
            left :data:`UNLABELLED` (radians; None disables).
    """
    if isinstance(references, SpectralLibrary):
        names = tuple(references.names)
        matrix = references.to_matrix()
    else:
        matrix = np.asarray(references, dtype=float)
        if matrix.ndim != 2:
            raise DataError(f"references must be (k, bands), got {matrix.shape}")
        names = tuple(
            class_names
            if class_names is not None
            else [f"class_{i}" for i in range(matrix.shape[0])]
        )
    if len(names) != matrix.shape[0]:
        raise ConfigurationError(
            f"{len(names)} names for {matrix.shape[0]} references"
        )
    if rejection_threshold is not None and rejection_threshold <= 0:
        raise ConfigurationError("rejection_threshold must be positive")

    angles = sad_to_references(image.flatten_pixels(), matrix)
    best = np.argmin(angles, axis=1).astype(np.int64)
    best_angle = np.take_along_axis(angles, best[:, None], axis=1)[:, 0]
    if rejection_threshold is not None:
        best = np.where(best_angle <= rejection_threshold, best, UNLABELLED)
    return SAMClassification(
        labels=best.reshape(image.rows, image.cols),
        angles=best_angle.reshape(image.rows, image.cols),
        class_names=names,
        rejection_threshold=rejection_threshold,
    )
