"""High-level driver: run any of the four algorithms on any platform.

Connects the pieces: chooses workload fractions for the requested
variant (heterogeneous/homogeneous), derives the WEA row partition with
memory bounds, and executes the SPMD program on the virtual-time engine
(for performance experiments) or the in-process wall-clock backend (for
correctness and real parallel runs).

Variants:

* ``"hetero"`` — the paper's heterogeneous algorithms: WEA
  speed-proportional shares (Algorithm 1), with halo-compensated row
  counts for the windowed MORPH kernels.  For the iterative
  master/worker loops this is near-optimal: every iteration ends at a
  gather barrier, so per-iteration compute balance dominates and the
  one-time scatter skew is amortized;
* ``"dlt"`` — divisible-load-theory shares optimizing the serialized
  one-shot scatter-plus-compute schedule (processor cycle-times *and*
  link capacities).  Better for single-pass workloads; over-tilts
  shares for the iterative algorithms (the ablation benchmark
  quantifies both regimes);
* ``"homo"`` — the homogeneous versions: equal shares.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.cluster.costs import DEFAULT_COST_MODEL, CostModel
from repro.cluster.engine import SimulationResult, run_program
from repro.cluster.platform import HeterogeneousPlatform
from repro.core.parallel_atdca import parallel_atdca_program
from repro.core.parallel_morph import morph_halo_depth, parallel_morph_program
from repro.core.parallel_pct import parallel_pct_program
from repro.core.parallel_ufcls import parallel_ufcls_program
from repro.errors import ConfigurationError
from repro.hsi.cube import HyperspectralImage
from repro.morphology.structuring import square
from repro.mpi.inproc import InprocResult, run_inproc
from repro.scheduling.static_part import (
    RowPartition,
    dlt_fractions,
    halo_compensated_rows,
    heterogeneous_fractions,
    homogeneous_fractions,
    wea_partition,
)
from repro.types import FloatArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.recovery import CheckpointStore
    from repro.obs import ObsSession
    from repro.tuning.planner import TuningPlan

__all__ = [
    "ALGORITHM_NAMES",
    "estimate_row_workload",
    "make_fractions",
    "make_row_partition",
    "make_row_partition_for_dims",
    "build_program_kwargs",
    "ParallelRun",
    "run_parallel",
]

#: The paper's four algorithms.
ALGORITHM_NAMES: tuple[str, ...] = ("atdca", "ufcls", "pct", "morph")

_PROGRAMS: Mapping[str, Callable[..., Any]] = {
    "atdca": parallel_atdca_program,
    "ufcls": parallel_ufcls_program,
    "pct": parallel_pct_program,
    "morph": parallel_morph_program,
}

_VARIANTS = ("hetero", "dlt", "homo")


def _check_algorithm(name: str) -> str:
    if name not in _PROGRAMS:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; expected one of {ALGORITHM_NAMES}"
        )
    return name


def estimate_row_workload(
    algorithm: str,
    cols: int,
    bands: int,
    params: Mapping[str, Any],
    cost_model: CostModel | None = None,
) -> tuple[float, float]:
    """Per-row (mflops, megabits) for the network-aware WEA fractions.

    Uses the same cost formulas the programs charge, evaluated for one
    row of ``cols`` pixels across the algorithm's dominant loop.
    """
    _check_algorithm(algorithm)
    cost = cost_model or DEFAULT_COST_MODEL
    megabits = cost.pixels_megabits(cols, bands)
    if algorithm == "atdca":
        t = int(params.get("n_targets", 18))
        mflops = sum(cost.osp_scores(cols, bands, k) for k in range(1, t))
        mflops += cost.brightest_search(cols, bands)
    elif algorithm == "ufcls":
        t = int(params.get("n_targets", 18))
        mflops = sum(cost.fcls_scores(cols, bands, k) for k in range(1, t))
        mflops += cost.brightest_search(cols, bands)
    elif algorithm == "pct":
        c = int(params.get("n_classes", 24))
        mflops = (
            cost.unique_set_scan(cols, bands, c)
            + cost.covariance_accumulate(cols, bands)
            + cost.pct_projection(cols, bands, c)
            + cost.classify_by_sad(cols, c, c)
        )
    else:  # morph
        c = int(params.get("n_classes", 24))
        iterations = int(params.get("iterations", 5))
        se = params.get("se") or square(3)
        mflops = (
            cost.morph_iteration(cols, bands, se.size) * iterations
            + cost.classify_by_sad(cols, bands, c)
        )
        megabits = cost.pixels_megabits(cols, bands)  # halo ignored here
    return float(mflops), float(megabits)


def make_fractions(
    platform: HeterogeneousPlatform,
    algorithm: str,
    cols: int,
    bands: int,
    params: Mapping[str, Any],
    variant: str = "hetero",
    cost_model: CostModel | None = None,
) -> FloatArray:
    """Workload fractions for the requested variant.

    The DLT solve is scale-invariant, so the per-row workload estimates
    stand in for the totals.
    """
    if variant not in _VARIANTS:
        raise ConfigurationError(
            f"unknown variant {variant!r}; expected one of {_VARIANTS}"
        )
    if variant == "homo":
        return homogeneous_fractions(platform)
    if variant == "hetero":
        return heterogeneous_fractions(platform)
    mflops, megabits = estimate_row_workload(
        algorithm, cols, bands, params, cost_model
    )
    return dlt_fractions(platform, mflops, megabits)


def _morph_halo(params: Mapping[str, Any]) -> int:
    se = params.get("se") or square(3)
    iterations = int(params.get("iterations", 5))
    return morph_halo_depth(se, iterations, exact=bool(params.get("exact_halo", False)))


def make_row_partition_for_dims(
    platform: HeterogeneousPlatform,
    rows: int,
    cols: int,
    bands: int,
    algorithm: str,
    params: Mapping[str, Any],
    variant: str = "hetero",
    cost_model: CostModel | None = None,
) -> RowPartition:
    """Fractions → memory-bounded WEA row partition for a scene shape.

    The partition depends only on the scene *dimensions*, never the
    pixel data, so what-if capacity planning can re-partition a
    perturbed platform from a recorded trace's metadata alone and get
    exactly the partition a real run would use.

    For MORPH under the heterogeneous variants, row counts are
    additionally halo-compensated: the windowed kernels process
    ``rows + 2·halo`` rows, so shares equalize extended-block work.
    """
    algorithm = _check_algorithm(algorithm)
    fractions = make_fractions(
        platform, algorithm, cols, bands, params, variant, cost_model
    )
    if algorithm == "morph" and variant != "homo":
        counts = halo_compensated_rows(rows, fractions, _morph_halo(params))
        return RowPartition(counts)
    return wea_partition(platform, rows, cols, bands, fractions=fractions)


def make_row_partition(
    platform: HeterogeneousPlatform,
    image: HyperspectralImage,
    algorithm: str,
    params: Mapping[str, Any],
    variant: str = "hetero",
    cost_model: CostModel | None = None,
) -> RowPartition:
    """Fractions → memory-bounded WEA row partition for ``image``."""
    return make_row_partition_for_dims(
        platform, image.rows, image.cols, image.bands,
        algorithm, params, variant, cost_model,
    )


def build_program_kwargs(
    algorithm: str,
    params: Mapping[str, Any],
    partition: RowPartition,
    kernels: Mapping[str, str] | None = None,
) -> dict[str, Any]:
    """Translate user ``params`` into the program's keyword arguments.

    Shared by :func:`run_parallel` and the fault-tolerant driver
    (:func:`repro.faults.recovery.run_with_recovery`), which re-invokes
    programs on survivor subsets with a fresh partition.

    ``kernels`` (kernel name → registry variant name, as a
    :class:`repro.tuning.planner.TuningPlan` carries) adds the kernel
    dispatch arguments the iterative detectors accept; classifier
    programs dispatch through the registry defaults and ignore it.
    """
    _check_algorithm(algorithm)
    program_kwargs: dict[str, Any] = {"partition": partition}
    if algorithm in ("atdca", "ufcls"):
        program_kwargs["n_targets"] = int(params.get("n_targets", 18))
        if kernels:
            if algorithm == "atdca" and "osp_step" in kernels:
                program_kwargs["osp_variant"] = kernels["osp_step"]
            if algorithm == "ufcls" and "fcls_solve" in kernels:
                program_kwargs["fcls_variant"] = kernels["fcls_solve"]
    else:
        program_kwargs["n_classes"] = int(params.get("n_classes", 24))
        if algorithm == "morph":
            program_kwargs["iterations"] = int(params.get("iterations", 5))
            if params.get("se") is not None:
                program_kwargs["se"] = params["se"]
            if params.get("dedup_threshold") is not None:
                program_kwargs["dedup_threshold"] = params["dedup_threshold"]
            if params.get("exact_halo") is not None:
                program_kwargs["exact_halo"] = bool(params["exact_halo"])
        elif params.get("threshold") is not None:
            program_kwargs["threshold"] = params["threshold"]
    return program_kwargs


def _stamp_run_meta(
    obs: "ObsSession",
    algorithm: str,
    variant: str,
    image: HyperspectralImage,
    platform: HeterogeneousPlatform,
    partition: RowPartition,
    params: Mapping[str, Any],
    cost_model: CostModel | None,
    plan: "TuningPlan | None" = None,
) -> None:
    """Record the run's workload descriptor as a zero-length span.

    The ``run.meta`` span rides along in every trace export, so the
    what-if engine can regenerate the analytic op program (algorithm,
    scene shape, partition, cost-model scalars) from a trace file alone
    — required for structural perturbations like worker add/remove and
    capacity sweeps.  Category ``"meta"`` is outside the activity
    categories, so analyzers, the DAG, and the gantt ignore it.

    Auto-planned runs additionally carry scalar ``plan_*`` attributes
    (chosen variant, prediction, kernel choices, calibration-scale
    provenance) so every planner decision is auditable from the trace —
    :func:`repro.obs.analyze.analyze_trace` surfaces them in
    ``analysis.json``.
    """
    cost = cost_model or DEFAULT_COST_MODEL
    scalar_params = {
        k: v for k, v in params.items()
        if isinstance(v, (int, float, str, bool))
    }
    plan_attrs: dict[str, Any] = {}
    if plan is not None:
        plan_attrs = {
            "plan_partition_variant": plan.partition_variant,
            "plan_predicted_s": float(plan.predicted_makespan_s),
            "plan_default_variant": plan.default_variant,
            "plan_default_predicted_s": float(plan.default_predicted_s),
            "plan_kernels": ",".join(
                f"{k}={v}" for k, v in sorted(plan.kernels.items())
            ),
            "plan_checkpoint_every": int(plan.checkpoint_every),
            "plan_scales_compute": float(plan.scales["compute"]),
            "plan_scales_transfer": float(plan.scales["transfer"]),
        }
        if plan.scale_provenance is not None:
            for key in ("git_sha", "date", "source"):
                value = plan.scale_provenance.get(key)
                if value is not None:
                    plan_attrs[f"plan_scales_{key}"] = str(value)
    obs.tracer.add_span(
        "run.meta", platform.master_rank, 0.0, 0.0, category="meta",
        algorithm=algorithm, variant=variant,
        rows=int(image.rows), cols=int(image.cols), bands=int(image.bands),
        partition=",".join(str(int(c)) for c in partition.counts),
        platform=platform.name, size=int(platform.size),
        master_rank=int(platform.master_rank),
        efficiency=float(cost.efficiency),
        bytes_per_value=int(cost.bytes_per_value),
        compute_scale=float(cost.compute_scale),
        comm_scale=float(cost.comm_scale),
        **plan_attrs,
        **scalar_params,
    )


@dataclasses.dataclass
class ParallelRun:
    """Outcome of one parallel execution.

    Attributes:
        algorithm: ``"atdca" | "ufcls" | "pct" | "morph"``.
        variant: partitioning variant used.
        output: the algorithm's result object (from the master rank).
        partition: the row partition that was executed.
        sim: virtual-time result (``backend="sim"``), else ``None``.
        inproc: wall-clock result (``backend="inproc"``), else ``None``.
    """

    algorithm: str
    variant: str
    output: Any
    partition: RowPartition
    sim: SimulationResult | None = None
    inproc: InprocResult | None = None

    @property
    def makespan(self) -> float:
        if self.sim is None:
            raise ConfigurationError("makespan requires the sim backend")
        return self.sim.makespan


def run_parallel(
    algorithm: str,
    image: HyperspectralImage,
    platform: HeterogeneousPlatform,
    params: Mapping[str, Any] | None = None,
    variant: str = "hetero",
    backend: str = "sim",
    cost_model: CostModel | None = None,
    partition: RowPartition | None = None,
    obs: "ObsSession | None" = None,
    faults: "FaultInjector | None" = None,
    checkpoint: "CheckpointStore | None" = None,
    plan: "TuningPlan | None" = None,
) -> ParallelRun:
    """Run one algorithm end to end on a platform.

    Args:
        algorithm: one of :data:`ALGORITHM_NAMES`.
        image: the scene (held by the master; scattered by the program).
        platform: processors + network (also fixes the rank count).
        params: algorithm parameters (``n_targets`` for the detectors,
            ``n_classes``/``iterations``/``se``/``exact_halo`` for the
            classifiers).
        variant: ``"hetero"`` (default), ``"speed"``, or ``"homo"``.
        backend: ``"sim"`` (virtual time) or ``"inproc"`` (wall clock).
        cost_model: flop/byte accounting (sim backend).
        partition: override the derived partition (ablations).
        obs: observability session; spans/metrics are clocked by
            virtual time on ``"sim"`` and by the wall on ``"inproc"``.
        faults: fault injector interpreting a fault plan on either
            backend; must already be attached to ``platform``.  For
            crash *recovery* (not just injection) use
            :func:`repro.faults.recovery.run_with_recovery`.
        checkpoint: master checkpoint store for the iterative target
            detectors (ignored by pct/morph).
        plan: a :class:`repro.tuning.planner.TuningPlan` to dispatch
            through — sets the partition variant/counts, the kernel
            variants, and the checkpoint cadence the planner chose.
            Explicit ``partition`` overrides still win.  The plan must
            match this run's algorithm, scene dimensions, and platform.

    Returns:
        A :class:`ParallelRun` with the master's output and timing.
    """
    _check_algorithm(algorithm)
    params = dict(params or {})
    if backend not in ("sim", "inproc"):
        raise ConfigurationError(f"unknown backend {backend!r}")
    if plan is not None:
        mismatches = [
            f"{what}: plan has {got!r}, run has {want!r}"
            for what, got, want in (
                ("algorithm", plan.algorithm, algorithm),
                ("rows", plan.rows, int(image.rows)),
                ("cols", plan.cols, int(image.cols)),
                ("bands", plan.bands, int(image.bands)),
                ("platform size", plan.platform_size, int(platform.size)),
            )
            if got != want
        ]
        if mismatches:
            raise ConfigurationError(
                "tuning plan does not match this run — "
                + "; ".join(mismatches)
            )
        variant = plan.partition_variant
        if partition is None:
            partition = plan.row_partition()
    part = partition or make_row_partition(
        platform, image, algorithm, params, variant, cost_model
    )
    if obs is not None:
        _stamp_run_meta(
            obs, algorithm, variant, image, platform, part, params,
            cost_model, plan=plan,
        )

    program = _PROGRAMS[algorithm]
    program_kwargs = build_program_kwargs(
        algorithm, params, part,
        kernels=plan.kernels if plan is not None else None,
    )
    if checkpoint is not None and algorithm in ("atdca", "ufcls"):
        program_kwargs["checkpoint"] = checkpoint
        if plan is not None:
            program_kwargs["checkpoint_every"] = int(plan.checkpoint_every)

    master = platform.master_rank
    kwargs_per_rank = [
        {"image": image if rank == master else None}
        for rank in range(platform.size)
    ]

    if backend == "sim":
        sim = run_program(
            platform,
            program,
            kwargs_per_rank=kwargs_per_rank,
            cost_model=cost_model,
            obs=obs,
            faults=faults,
            **program_kwargs,
        )
        return ParallelRun(
            algorithm=algorithm,
            variant=variant,
            output=sim.return_values[master],
            partition=part,
            sim=sim,
        )
    live = getattr(obs, "live", None) if obs is not None else None
    if live is not None:
        # The wall-clock backend has no cost model of its own; the live
        # runtime needs the platform to derive nominal compute
        # durations for the online health detector.
        live.bind(platform=platform, faults=faults)
    inproc = run_inproc(
        platform.size,
        program,
        kwargs_per_rank=kwargs_per_rank,
        master_rank=master,
        obs=obs,
        faults=faults,
        **program_kwargs,
    )
    return ParallelRun(
        algorithm=algorithm,
        variant=variant,
        output=inproc.return_values[master],
        partition=part,
        inproc=inproc,
    )
