"""Sequential MORPH classification (Algorithm 5's computational content).

The spatial/spectral algorithm: iterate ``I_max`` passes of vector
erosion/dilation (eqs. 3–4), maintaining a morphological eccentricity
index (MEI, eq. 5) per pixel; after each pass the image is replaced by
its dilation (a multiscale sweep).  The ``c`` pixels with the highest
MEI — deduplicated by pairwise SAD — become endmembers, and every pixel
is labelled with its most similar endmember under full-spectral SAD.

MEI update rule: the paper says "update the MEI score" each iteration
without fixing the combiner; we take the running **maximum** (strongest
eccentricity over scales), documented in DESIGN.md.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.unique import UniqueSet, greedy_unique, merge_unique_sets
from repro.errors import ConfigurationError, ShapeError
from repro.hsi.cube import HyperspectralImage
from repro.hsi.metrics import sad_to_references
from repro.morphology.ops import (
    _EPS,
    clamped_neighbor_indices,
    edge_pad_into,
    extrema_positions,
    mei_scores,
    morph_extrema,
    offset_angle_maps,
    unique_pair_angles,
    unique_pair_mei,
)
from repro.morphology.structuring import StructuringElement, square
from repro.types import FloatArray, IntArray

__all__ = [
    "MorphClassification",
    "mei_map",
    "mei_map_reference",
    "select_endmembers",
    "morph_classify",
]

#: Default SAD threshold for deduplicating endmember candidates.
DEFAULT_DEDUP_THRESHOLD = 0.05


@dataclasses.dataclass(frozen=True)
class MorphClassification:
    """Output of MORPH classification.

    Attributes:
        labels: ``(rows, cols)`` class index into ``endmembers.signatures``.
        endmembers: the unique endmember set (flat pixel indices refer
            to the *original* image's flattened pixel list).
        mei: the final ``(rows, cols)`` MEI map.
    """

    labels: IntArray
    endmembers: UniqueSet
    mei: FloatArray

    @property
    def n_classes(self) -> int:
        return self.endmembers.count


def mei_map_reference(
    cube: FloatArray,
    se: StructuringElement,
    iterations: int,
) -> FloatArray:
    """Reference multiscale MEI map: direct per-pass erosion/dilation.

    This is the straightforward evaluation of steps 2(a)–(c) — each pass
    re-normalizes the whole frame and recomputes every window angle.
    :func:`mei_map` produces the same array bit-for-bit via the
    pair-compressed fast path; this implementation is kept as the
    equivalence oracle (and for profiling comparisons).
    """
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    arr = np.asarray(cube, dtype=float)
    if arr.ndim != 3:
        raise ShapeError(f"expected (rows, cols, bands), got {arr.shape}")
    current = arr
    mei = np.zeros(arr.shape[:2])
    for step in range(iterations):
        extrema = morph_extrema(current, se)
        scores = mei_scores(extrema)
        np.maximum.at(mei, (extrema.dilated_rows, extrema.dilated_cols), scores)
        if step + 1 < iterations:
            current = extrema.dilated
    return mei


def mei_map(
    cube: FloatArray,
    se: StructuringElement,
    iterations: int,
) -> FloatArray:
    """Steps 2(a)–(c): the multiscale MEI map over ``iterations`` passes.

    Pass ``j`` computes erosion/dilation of the current image, credits
    ``SAD(eroded, dilated)`` to the *pure* pixel the dilation selected
    (the AMEE convention of [13]: the eccentricity score belongs to the
    spectrally purest pixel of the window, which is what makes top-MEI
    pixels endmember material rather than class-boundary mixtures),
    folding into a running max, then replaces the image by its dilation
    for the next scale.

    Fast path (bit-identical to :func:`mei_map_reference`): dilation
    only *selects* existing pixels, so instead of materializing and
    renormalizing each dilated frame this carries a provenance map of
    flat indices into the original cube — unit spectra and norms are
    computed once.  The first pass (frame = original cube, every pixel
    distinct) computes the per-offset D_B sweeps with the
    (dr,dc)/(−dr,−dc) mirror symmetry — each mirrored angle field is the
    lead field shifted, with only the clamped border strips recomputed
    (:func:`~repro.morphology.ops.offset_angle_maps`), halving the
    full-frame dot-product sweeps.  Later passes gather heavily (the
    dilated frame repeats its window maxima), so their window angles are
    deduplicated to distinct pixel-index pairs before the O(bands) dot
    products run; MEI angles are pair-deduplicated on every pass.
    Per-pass D_B accumulation keeps the structuring element's offset
    order, so the sums see the same floats in the same order as the
    direct evaluation.
    """
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    arr = np.asarray(cube, dtype=float)
    if arr.ndim != 3:
        raise ShapeError(f"expected (rows, cols, bands), got {arr.shape}")
    rows, cols, bands = arr.shape
    n = rows * cols
    flat = arr.reshape(n, bands)
    norms = np.linalg.norm(flat, axis=1)
    unit = flat / np.maximum(norms, _EPS)[:, None]
    pr, pc = se.shape[0] // 2, se.shape[1] // 2
    offsets = [
        (dr, dc) for dr, dc in se.offsets() if not (dr == 0 and dc == 0)
    ]
    neighbors = clamped_neighbor_indices(rows, cols, se)

    prov = np.arange(n)  # current frame pixel → original flat index
    mei = np.zeros((rows, cols))
    dmap = np.empty((rows, cols))
    scratch: dict[str, FloatArray] = {}  # reused pair-gather buffers
    for step in range(iterations):
        # D_B (eq. 2): accumulated per offset in se.offsets() order.
        dmap[:] = 0.0
        if step == 0:
            gu = unit.reshape(rows, cols, bands)
            cosbuf = np.empty((rows, cols))
            padded = edge_pad_into(
                np.empty((rows + 2 * pr, cols + 2 * pc, bands)), gu, pr, pc
            )
            for ang in offset_angle_maps(gu, padded, offsets, pr, pc, cosbuf):
                dmap += ang
            del padded, cosbuf
        else:
            lefts = np.concatenate([prov] * len(neighbors))
            rights = np.concatenate([prov[nb] for nb in neighbors])
            angles = unique_pair_angles(lefts, rights, unit, scratch)
            for k in range(len(neighbors)):
                dmap += angles[k * n : (k + 1) * n].reshape(rows, cols)

        er_r, er_c, di_r, di_c = extrema_positions(dmap, se)
        di_flat = (di_r * cols + di_c).ravel()
        e_idx = prov[(er_r * cols + er_c).ravel()]
        d_idx = prov[di_flat]
        scores = unique_pair_mei(
            e_idx, d_idx, flat, norms, scratch
        ).reshape(rows, cols)
        # MEI credit goes to the *lattice position* the dilation chose
        # in the current frame, not the provenance pixel.
        np.maximum.at(mei, (di_r, di_c), scores)
        if step + 1 < iterations:
            prov = prov[di_flat]
    return mei


def local_endmember_candidates(
    cube: FloatArray,
    mei: FloatArray,
    n_classes: int,
    row_offset: int = 0,
    total_cols: int | None = None,
    dedup_threshold: float = DEFAULT_DEDUP_THRESHOLD,
) -> UniqueSet:
    """Step 2(d): the ``c`` highest-MEI *spectrally distinct* pixels of
    one (local) partition.

    Candidates are scanned in decreasing MEI order (8× oversampled) and
    kept only when their SAD to everything already kept exceeds
    ``dedup_threshold`` — without this, a partition crossed by one
    high-contrast boundary (a river bank) fills all ``c`` slots with
    near-copies of the same two signatures and the master never sees
    the partition's subtler classes.

    Args:
        cube: the local ``(rows, cols, bands)`` block.
        mei: its MEI map.
        n_classes: distinct candidates to keep.
        row_offset: the block's first global row — candidate indices are
            returned as *global* flat indices so the master can merge.
        total_cols: global scene width (defaults to the block's).
        dedup_threshold: local SAD distinctness.
    """
    if n_classes < 1:
        raise ConfigurationError(f"n_classes must be >= 1, got {n_classes}")
    arr = np.asarray(cube, dtype=float)
    flat_mei = np.asarray(mei, dtype=float).ravel()
    n_pixels = arr.shape[0] * arr.shape[1]
    if flat_mei.shape[0] != n_pixels:
        raise ShapeError("MEI map does not match the cube's spatial dims")
    cols = arr.shape[1] if total_cols is None else total_cols
    pool = min(n_pixels, 8 * n_classes)
    order = np.argsort(-flat_mei, kind="stable")[:pool]
    pixels = arr.reshape(n_pixels, -1)
    distinct = greedy_unique(
        pixels[order], dedup_threshold, max_keep=min(n_classes, pool)
    )
    chosen = order[distinct.indices]
    local_rows, local_cols = np.divmod(chosen, arr.shape[1])
    global_flat = (local_rows + row_offset) * cols + local_cols
    return UniqueSet(
        signatures=distinct.signatures,
        indices=global_flat,
        scores=flat_mei[chosen],
    )


def select_endmembers(
    cube: FloatArray,
    mei: FloatArray,
    n_classes: int,
    dedup_threshold: float = DEFAULT_DEDUP_THRESHOLD,
    strata: int = 16,
) -> UniqueSet:
    """Steps 2(d) + 3: spatially stratified top-MEI candidates, merged.

    Mirrors the parallel algorithm's structure: the image is split into
    ``strata`` row slabs (the workers' partitions), each contributes its
    ``c`` highest-MEI pixels, and the union is deduplicated by pairwise
    SAD and reduced to ``n_classes``.  Spatial stratification is what
    keeps the candidate set from being monopolized by the scene's
    single highest-contrast boundary.

    Indices are into the flattened pixel list of ``cube``.
    """
    arr = np.asarray(cube, dtype=float)
    rows = arr.shape[0]
    if strata < 1:
        raise ConfigurationError(f"strata must be >= 1, got {strata}")
    strata = min(strata, rows)
    bounds = np.linspace(0, rows, strata + 1).astype(int)
    flat_mei = np.asarray(mei, dtype=float)
    if flat_mei.shape != arr.shape[:2]:
        raise ShapeError("MEI map does not match the cube's spatial dims")
    candidates = [
        local_endmember_candidates(
            arr[a:b], flat_mei[a:b], n_classes, row_offset=a,
            total_cols=arr.shape[1],
        )
        for a, b in zip(bounds[:-1], bounds[1:])
        if b > a
    ]
    return merge_unique_sets(candidates, dedup_threshold, count=n_classes)


def morph_classify(
    image: HyperspectralImage,
    n_classes: int,
    se: StructuringElement | None = None,
    iterations: int = 5,
    dedup_threshold: float = DEFAULT_DEDUP_THRESHOLD,
    mei_variant: str = "paired",
) -> MorphClassification:
    """Run the full MORPH classifier on a cube.

    Args:
        image: the scene.
        n_classes: ``c`` — endmembers/classes to extract (paper: 7).
        se: structuring element ``B`` (default 3×3 square).
        iterations: ``I_max`` (paper: 5).
        dedup_threshold: SAD distinctness for the endmember set.
        mei_variant: ``morph_mei`` registry variant for the MEI map —
            ``"paired"`` (default, the pair-compressed fast path) or
            ``"reference"``; the two are bit-identical.
    """
    from repro.tuning.registry import resolve

    se = se or square(3)
    cube = image.values
    mei = resolve("morph_mei", mei_variant).implementation()(
        cube, se, iterations
    )
    endmembers = select_endmembers(cube, mei, n_classes, dedup_threshold)
    angles = sad_to_references(image.flatten_pixels(), endmembers.signatures)
    labels = np.argmin(angles, axis=1).astype(np.int64)
    return MorphClassification(
        labels=labels.reshape(image.rows, image.cols),
        endmembers=endmembers,
        mei=mei,
    )
