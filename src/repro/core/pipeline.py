"""The paper's end-to-end application flow as one call.

Section 3's methodology chains: estimate the intrinsic dimensionality
(→ the number of targets ``t``), detect thermal targets (ATDCA and/or
UFCLS), classify the scene (PCT and/or MORPH), and score everything
against reference data when available.  :func:`analyze_scene` runs that
chain — sequentially, or on any platform via the parallel runner — and
returns a single report object, which is what an emergency-response
integration would consume.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Mapping

from repro.cluster.costs import CostModel
from repro.cluster.platform import HeterogeneousPlatform
from repro.core.atdca import TargetDetectionResult, atdca
from repro.core.morph import MorphClassification, morph_classify
from repro.core.pct import PCTClassification, pct_classify
from repro.core.runner import run_parallel
from repro.core.ufcls import ufcls
from repro.errors import ConfigurationError
from repro.hsi.cube import HyperspectralImage
from repro.hsi.dimensionality import hfc_virtual_dimensionality
from repro.hsi.evaluation import ClassificationScore, score_classification
from repro.hsi.groundtruth import SceneGroundTruth
from repro.hsi.metrics import match_targets

__all__ = ["SceneAnalysis", "analyze_scene"]

_DETECTORS = {"atdca": atdca, "ufcls": ufcls}
_CLASSIFIERS = {"pct": pct_classify, "morph": morph_classify}


@dataclasses.dataclass
class SceneAnalysis:
    """Everything the pipeline produced.

    Attributes:
        virtual_dimensionality: HFC estimate used to size ``t`` (None if
            ``n_targets`` was given explicitly).
        n_targets: the target count actually used.
        detections: detector name → :class:`TargetDetectionResult`.
        classifications: classifier name → result object.
        target_scores: detector → hot-spot label → SAD (only when
            ground truth was supplied).
        classification_scores: classifier → :class:`ClassificationScore`
            (only when ground truth was supplied).
        wall_seconds: stage → wall-clock duration.
    """

    virtual_dimensionality: int | None
    n_targets: int
    detections: dict[str, TargetDetectionResult]
    classifications: dict[str, PCTClassification | MorphClassification]
    target_scores: dict[str, dict[str, float]]
    classification_scores: dict[str, ClassificationScore]
    wall_seconds: dict[str, float]

    def summary(self) -> str:
        """A compact human-readable report."""
        lines = []
        if self.virtual_dimensionality is not None:
            lines.append(
                f"virtual dimensionality (HFC): {self.virtual_dimensionality}"
            )
        lines.append(f"targets extracted per detector: {self.n_targets}")
        for name, scores in self.target_scores.items():
            found = sum(1 for v in scores.values() if v < 0.02)
            lines.append(
                f"  {name}: {found}/{len(scores)} ground targets matched "
                f"({self.wall_seconds[name]:.1f}s)"
            )
        for name, score in self.classification_scores.items():
            lines.append(
                f"  {name}: {score.overall:.1f}% overall accuracy "
                f"({self.wall_seconds[name]:.1f}s)"
            )
        return "\n".join(lines)


def analyze_scene(
    image: HyperspectralImage,
    truth: SceneGroundTruth | None = None,
    n_targets: int | None = None,
    n_classes: int = 24,
    detectors: tuple[str, ...] = ("atdca", "ufcls"),
    classifiers: tuple[str, ...] = ("pct", "morph"),
    platform: HeterogeneousPlatform | None = None,
    cost_model: CostModel | None = None,
    classifier_params: Mapping[str, Any] | None = None,
) -> SceneAnalysis:
    """Run the full detection + classification pipeline on a scene.

    Args:
        image: the cube to analyze.
        truth: optional ground truth; enables scoring.
        n_targets: ``t``; default = HFC virtual dimensionality,
            floored at 8 (matching the paper's practice of sizing ``t``
            from the intrinsic dimensionality).
        n_classes: ``c`` for the classifiers.
        detectors / classifiers: which algorithms to run (any subset).
        platform: when given, algorithms run in parallel on it via the
            virtual-time engine; otherwise sequentially.
        cost_model: engine cost model for parallel runs.
        classifier_params: per-classifier extra keyword arguments,
            keyed by classifier name (e.g.
            ``{"morph": {"iterations": 5}}``).

    Returns:
        A :class:`SceneAnalysis` report.
    """
    unknown = set(detectors) - set(_DETECTORS)
    if unknown:
        raise ConfigurationError(f"unknown detectors: {sorted(unknown)}")
    unknown = set(classifiers) - set(_CLASSIFIERS)
    if unknown:
        raise ConfigurationError(f"unknown classifiers: {sorted(unknown)}")

    wall: dict[str, float] = {}
    vd: int | None = None
    if n_targets is None:
        start = time.perf_counter()
        vd = hfc_virtual_dimensionality(image).vd
        wall["dimensionality"] = time.perf_counter() - start
        n_targets = max(vd, 8)

    per_classifier = {k: dict(v) for k, v in (classifier_params or {}).items()}
    unknown = set(per_classifier) - set(_CLASSIFIERS)
    if unknown:
        raise ConfigurationError(
            f"classifier_params for unknown classifiers: {sorted(unknown)}"
        )

    def run_stage(name: str, kind: str) -> Any:
        extra = per_classifier.get(name, {})
        start = time.perf_counter()
        if platform is None:
            if kind == "detector":
                out = _DETECTORS[name](image, n_targets)
            else:
                out = _CLASSIFIERS[name](image, n_classes, **extra)
        else:
            params: dict[str, Any] = (
                {"n_targets": n_targets}
                if kind == "detector"
                else {"n_classes": n_classes, **extra}
            )
            out = run_parallel(
                name, image, platform, params=params, cost_model=cost_model
            ).output
        wall[name] = time.perf_counter() - start
        return out

    detections = {name: run_stage(name, "detector") for name in detectors}
    classifications = {name: run_stage(name, "classifier") for name in classifiers}

    target_scores: dict[str, dict[str, float]] = {}
    classification_scores: dict[str, ClassificationScore] = {}
    if truth is not None:
        signatures = truth.target_signatures()
        for name, result in detections.items():
            matches = match_targets(result.signatures, signatures)
            target_scores[name] = {
                label: m["sad"] for label, m in matches.items()
            }
        for name, result in classifications.items():
            classification_scores[name] = score_classification(
                truth.class_map, result.labels, truth.class_names
            )

    return SceneAnalysis(
        virtual_dimensionality=vd,
        n_targets=n_targets,
        detections=detections,
        classifications=classifications,
        target_scores=target_scores,
        classification_scores=classification_scores,
        wall_seconds=wall,
    )
