"""Hetero-UFCLS (Algorithm 3): parallel unsupervised FCLS target finding.

Same master/worker skeleton as Hetero-ATDCA (steps 1–3 are shared
verbatim, per the paper), but each iteration's worker step builds a
local *error image* — the fully constrained least-squares residual of
every pixel against the current target set — and the candidate with the
largest error becomes the next target.

Bit-identical to :func:`repro.core.ufcls.ufcls` on the same image.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.core.atdca import TargetDetectionResult
from repro.core.parallel_atdca import _local_argmax, _select_candidate
from repro.core.parallel_common import (
    charged_kernel,
    cost_model_of,
    distribute_row_blocks,
    master_only,
    save_detection_checkpoint as _save_checkpoint,
)
from repro.errors import ConfigurationError
from repro.hsi.cube import HyperspectralImage
from repro.mpi.communicator import Communicator, MessageContext
from repro.obs.trace import tracer_of
from repro.scheduling.static_part import RowPartition
from repro.tuning.registry import resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.adaptive import AdaptiveController
    from repro.faults.recovery import CheckpointStore

__all__ = ["parallel_ufcls_program"]


def parallel_ufcls_program(
    ctx: MessageContext,
    partition: RowPartition,
    n_targets: int,
    image: HyperspectralImage | None = None,
    checkpoint: "CheckpointStore | None" = None,
    adaptive: "AdaptiveController | None" = None,
    fcls_variant: str = "incremental",
    checkpoint_every: int = 1,
) -> TargetDetectionResult | None:
    """SPMD body of Hetero-UFCLS; returns the result at the master.

    ``checkpoint`` enables master-side checkpoints (saved every
    ``checkpoint_every`` completed iterations; the final iteration
    always saves) for fault-tolerant restarts, and ``adaptive`` the
    straggler repartition round after each iteration (see
    :func:`parallel_atdca_program`).  ``fcls_variant`` names the
    ``fcls_solve`` registry variant for the per-rank solver state,
    uniform across ranks; both variants pick identical targets.
    """
    if n_targets < 1:
        raise ConfigurationError(f"n_targets must be >= 1, got {n_targets}")
    if checkpoint_every < 1:
        raise ConfigurationError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    comm = Communicator(ctx)
    cost = cost_model_of(ctx)
    tracer = tracer_of(ctx)
    master_only(ctx, image, "image")

    block = distribute_row_blocks(comm, image, partition)
    local = block.core_pixels
    bands = block.bands
    n_local = local.shape[0]

    indices: list[int] = []
    signatures: list[np.ndarray] = []
    scores: list[float] = []
    start_k = 0
    targets = None
    if checkpoint is not None:
        resume = None
        if comm.is_master:
            saved = checkpoint.load()
            if saved is not None:
                step, state = saved
                indices = list(state["indices"])
                signatures = list(state["signatures"])
                scores = list(state["scores"])
                resume = (step, state["u"])
        resume = comm.bcast(resume)
        if resume is not None:
            start_k, targets = resume

    # -- step 1: brightest pixel (shared with Hetero-ATDCA) ---------------------
    if start_k == 0:
        with tracer.span("ufcls.brightest", rank=ctx.rank):
            with charged_kernel(
                ctx, "brightest_search", cost.brightest_search(n_local, bands)
            ):
                if n_local:
                    energies = np.einsum("ij,ij->i", local, local)
                    lidx, score = _local_argmax(energies)
                    candidate = (
                        score, block.global_flat_index(lidx), local[lidx].copy()
                    )
                else:
                    candidate = (
                        -np.inf, np.iinfo(np.int64).max, np.zeros(bands)
                    )
            gathered = comm.gather(candidate)

            if comm.is_master:
                with charged_kernel(
                    ctx,
                    "brightest_search",
                    cost.brightest_search(comm.size, bands),
                    sequential=True,
                ):
                    win = _select_candidate(gathered)
                first = gathered[win]
                indices.append(first[1])
                signatures.append(first[2])
                scores.append(first[0])
                targets = first[2][None, :]
            else:
                targets = None
            targets = comm.bcast(targets)
        if 1 % checkpoint_every == 0 or n_targets == 1:
            _save_checkpoint(
                checkpoint, comm, indices, signatures, scores, targets
            )
        start_k = 1
        if adaptive is not None and n_targets > 1:
            adaptive.sync(ctx, comm, step=1)

    # Per-rank FCLS state (registry-dispatched): every broadcast appends
    # exactly one row to ``targets``; the incremental variant carries
    # the cross-products and Gram inverse across iterations (checkpoint
    # resumes replay the saved rows in order — the same arithmetic as a
    # live run).
    solver_impl = resolve("fcls_solve", fcls_variant).implementation()
    solver = solver_impl(local) if n_local else None
    if solver is not None and targets is not None:
        for row in np.atleast_2d(targets):
            solver.add_target(row)

    # -- steps 2-5: iterative error-driven extraction ------------------------------
    for k in range(start_k, n_targets):
        with tracer.span("ufcls.iteration", rank=ctx.rank, k=k):
            with charged_kernel(
                ctx, "fcls_scores", cost.fcls_scores(n_local, bands, k)
            ):
                if n_local:
                    error = solver.error_image()
                    lidx, score = _local_argmax(error)
                    candidate = (
                        score, block.global_flat_index(lidx), local[lidx].copy()
                    )
                else:
                    candidate = (
                        -np.inf, np.iinfo(np.int64).max, np.zeros(bands)
                    )
            gathered = comm.gather(candidate)
            if comm.is_master:
                with charged_kernel(
                    ctx,
                    "master_scls_selection",
                    cost.master_scls_selection(bands, k, comm.size),
                    sequential=True,
                ):
                    win = _select_candidate(gathered)
                chosen = gathered[win]
                indices.append(chosen[1])
                signatures.append(chosen[2])
                scores.append(chosen[0])
                new_targets = np.vstack([targets, chosen[2][None, :]])
            else:
                new_targets = None
            targets = comm.bcast(new_targets)
            if solver is not None:
                # The broadcast grew the target set by one row; fold it in.
                solver.add_target(targets[-1])
        if (k + 1) % checkpoint_every == 0 or k + 1 == n_targets:
            _save_checkpoint(
                checkpoint, comm, indices, signatures, scores, targets
            )
        if adaptive is not None and k + 1 < n_targets:
            adaptive.sync(ctx, comm, step=k + 1)

    if not comm.is_master:
        return None
    idx = np.asarray(indices, dtype=np.int64)
    rows, cols = np.divmod(idx, block.cols)
    return TargetDetectionResult(
        flat_indices=idx,
        signatures=np.vstack(signatures),
        scores=np.asarray(scores),
        positions=np.stack([rows, cols], axis=1),
    )
