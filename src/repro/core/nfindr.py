"""N-FINDR endmember extraction — an additional comparison baseline.

The simplex-volume school of endmember extraction (Winter's N-FINDR)
contrasts with the paper's projection (ATDCA), error (UFCLS), and
morphology (MORPH) schools: it seeks the ``k`` pixels whose simplex in
the (k−1)-dimensional PCT-reduced space has maximal volume.  Included
because a downstream user comparing the paper's detectors will want the
standard third baseline; the ablation benches use it the same way.

Implementation: classic iterative replacement.  Start from a seed
(ATDCA's targets — deterministic), reduce with PCT to k−1 dimensions,
then sweep pixels, testing each as a replacement for each current
vertex and keeping any swap that grows ``|det|``; repeat until a full
sweep makes no change.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.atdca import atdca_pixels
from repro.errors import ConfigurationError, ShapeError
from repro.hsi.cube import HyperspectralImage
from repro.linalg.pca import apply_pct, covariance_matrix, mean_vector, pct_transform
from repro.types import FloatArray, IntArray

__all__ = ["NFindrResult", "simplex_volume", "nfindr_pixels", "nfindr"]


def simplex_volume(vertices: FloatArray) -> float:
    """(Unnormalized) volume of the simplex spanned by ``(k, k-1)`` points:
    ``|det [1; V]|`` — the quantity N-FINDR maximizes."""
    v = np.asarray(vertices, dtype=float)
    if v.ndim != 2 or v.shape[0] != v.shape[1] + 1:
        raise ShapeError(
            f"need (k, k-1) vertices for a k-simplex, got {v.shape}"
        )
    mat = np.hstack([np.ones((v.shape[0], 1)), v])
    return abs(float(np.linalg.det(mat)))


@dataclasses.dataclass(frozen=True)
class NFindrResult:
    """Extracted endmembers.

    Attributes:
        flat_indices: pixel indices of the simplex vertices.
        signatures: full-spectral signatures at those pixels.
        volume: final simplex volume (reduced space).
        sweeps: replacement sweeps executed before convergence.
    """

    flat_indices: IntArray
    signatures: FloatArray
    volume: float
    sweeps: int


def nfindr_pixels(
    pixels: FloatArray, n_endmembers: int, max_sweeps: int = 10
) -> NFindrResult:
    """Run N-FINDR on an ``(n, bands)`` pixel matrix.

    Deterministic: seeded with ATDCA's targets rather than random picks.

    Args:
        pixels: the data.
        n_endmembers: simplex vertex count ``k`` (≥ 2).
        max_sweeps: sweep cap (convergence is typically 2-4 sweeps).
    """
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim != 2:
        raise ShapeError(f"expected (n, bands), got {pix.shape}")
    k = int(n_endmembers)
    if k < 2:
        raise ConfigurationError(f"n_endmembers must be >= 2, got {k}")
    if k > pix.shape[1] + 1:
        raise ConfigurationError(
            f"cannot span a {k}-vertex simplex with {pix.shape[1]} bands"
        )
    if k > pix.shape[0]:
        raise ConfigurationError(
            f"cannot pick {k} endmembers from {pix.shape[0]} pixels"
        )

    mean = mean_vector(pix)
    transform, _ = pct_transform(covariance_matrix(pix, mean), n_components=k - 1)
    reduced = apply_pct(pix, mean, transform)  # (n, k-1)

    current = atdca_pixels(pix, k).flat_indices.astype(np.int64)
    volume = simplex_volume(reduced[current])

    sweeps = 0
    improved = True
    while improved and sweeps < max_sweeps:
        improved = False
        sweeps += 1
        for candidate in range(pix.shape[0]):
            if candidate in current:
                continue
            for slot in range(k):
                trial = current.copy()
                trial[slot] = candidate
                trial_volume = simplex_volume(reduced[trial])
                if trial_volume > volume * (1 + 1e-12):
                    current = trial
                    volume = trial_volume
                    improved = True
    return NFindrResult(
        flat_indices=current,
        signatures=pix[current].copy(),
        volume=volume,
        sweeps=sweeps,
    )


def nfindr(
    image: HyperspectralImage, n_endmembers: int, max_sweeps: int = 10
) -> NFindrResult:
    """Run N-FINDR on a cube."""
    return nfindr_pixels(image.flatten_pixels(), n_endmembers, max_sweeps)
