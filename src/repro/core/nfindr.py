"""N-FINDR endmember extraction — an additional comparison baseline.

The simplex-volume school of endmember extraction (Winter's N-FINDR)
contrasts with the paper's projection (ATDCA), error (UFCLS), and
morphology (MORPH) schools: it seeks the ``k`` pixels whose simplex in
the (k−1)-dimensional PCT-reduced space has maximal volume.  Included
because a downstream user comparing the paper's detectors will want the
standard third baseline; the ablation benches use it the same way.

Implementation: classic iterative replacement.  Start from a seed
(ATDCA's targets — deterministic), reduce with PCT to k−1 dimensions,
then sweep pixels, testing each as a replacement for each current
vertex and keeping any swap that grows ``|det|``; repeat until a full
sweep makes no change.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.atdca import atdca_pixels
from repro.errors import ConfigurationError, ShapeError
from repro.hsi.cube import HyperspectralImage
from repro.linalg.pca import apply_pct, covariance_matrix, mean_vector, pct_transform
from repro.types import FloatArray, IntArray

__all__ = ["NFindrResult", "simplex_volume", "nfindr_pixels", "nfindr"]


def simplex_volume(vertices: FloatArray) -> float:
    """(Unnormalized) volume of the simplex spanned by ``(k, k-1)`` points:
    ``|det [1; V]|`` — the quantity N-FINDR maximizes."""
    v = np.asarray(vertices, dtype=float)
    if v.ndim != 2 or v.shape[0] != v.shape[1] + 1:
        raise ShapeError(
            f"need (k, k-1) vertices for a k-simplex, got {v.shape}"
        )
    mat = np.hstack([np.ones((v.shape[0], 1)), v])
    return abs(float(np.linalg.det(mat)))


def _sweep_scalar(
    reduced: FloatArray,
    current: IntArray,
    volume: float,
    k: int,
    start: int = 0,
) -> tuple[IntArray, float, bool]:
    """Reference one-trial-at-a-time replacement sweep (from ``start``).

    Kept as the fallback for degenerate (zero-volume) simplexes, where
    the cofactor screen of :func:`_replacement_sweep` is unavailable.
    """
    improved = False
    for candidate in range(start, reduced.shape[0]):
        if candidate in current:
            continue
        for slot in range(k):
            trial = current.copy()
            trial[slot] = candidate
            trial_volume = simplex_volume(reduced[trial])
            if trial_volume > volume * (1 + 1e-12):
                current = trial
                volume = trial_volume
                improved = True
    return current, volume, improved


def _replacement_sweep(
    reduced: FloatArray,
    aug: FloatArray,
    current: IntArray,
    volume: float,
    k: int,
) -> tuple[IntArray, float, bool]:
    """One first-accept replacement sweep with a batched volume screen.

    Replacing vertex ``s`` with pixel ``r`` changes row ``s`` of the
    augmented simplex matrix ``M = [1 | V]`` to ``aug[r]``, so the trial
    determinant is the cofactor expansion ``aug[r] · C[s]`` along that
    row.  One ``(n, k) @ (k, k)`` product therefore screens every
    (candidate, slot) pair against the current simplex at once, instead
    of ``n·k`` scalar ``det`` calls.  The scan replicates the scalar
    sweep's greedy order: pairs are visited candidate-major/slot-minor,
    the first improving swap is accepted immediately (confirmed with the
    exact :func:`simplex_volume` determinant, which also becomes the
    stored volume), and scanning resumes at the next candidate against
    the updated simplex.
    """
    improved = False
    resume = 0
    guard = 1.0 + 1e-12
    n = reduced.shape[0]
    while resume < n:
        mat = np.hstack([np.ones((k, 1)), reduced[current]])
        det_m = float(np.linalg.det(mat))
        if det_m == 0.0 or not np.isfinite(det_m):
            # Degenerate simplex: no cofactor matrix — finish the sweep
            # with the scalar reference scan.
            current, volume, scalar_improved = _sweep_scalar(
                reduced, current, volume, k, start=resume
            )
            return current, volume, improved or scalar_improved
        cofactors = det_m * np.linalg.inv(mat).T  # (k, k), C[s, j]
        trial_volumes = np.abs(aug @ cofactors.T)  # (n, k): pair (r, s)
        ok = trial_volumes > volume * guard
        ok[current] = False  # candidates already in the simplex
        ok[:resume] = False  # pairs the sweep already passed
        while True:
            flat = int(np.argmax(ok))  # first True in (candidate, slot) order
            if not ok.flat[flat]:
                return current, volume, improved
            r, s = divmod(flat, k)
            trial = current.copy()
            trial[s] = r
            trial_volume = simplex_volume(reduced[trial])
            if trial_volume > volume * guard:
                current = trial
                volume = trial_volume
                improved = True
                resume = r + 1
                break
            # Screen false positive at the comparison margin: the exact
            # determinant governs, as in the scalar sweep.
            ok.flat[flat] = False
    return current, volume, improved


@dataclasses.dataclass(frozen=True)
class NFindrResult:
    """Extracted endmembers.

    Attributes:
        flat_indices: pixel indices of the simplex vertices.
        signatures: full-spectral signatures at those pixels.
        volume: final simplex volume (reduced space).
        sweeps: replacement sweeps executed before convergence.
    """

    flat_indices: IntArray
    signatures: FloatArray
    volume: float
    sweeps: int


def nfindr_pixels(
    pixels: FloatArray,
    n_endmembers: int,
    max_sweeps: int = 10,
    screen_variant: str = "batched",
) -> NFindrResult:
    """Run N-FINDR on an ``(n, bands)`` pixel matrix.

    Deterministic: seeded with ATDCA's targets rather than random picks.

    Args:
        pixels: the data.
        n_endmembers: simplex vertex count ``k`` (≥ 2).
        max_sweeps: sweep cap (convergence is typically 2-4 sweeps).
        screen_variant: ``nfindr_screen`` registry variant for the
            replacement sweep — ``"batched"`` (default, the cofactor
            screen) or ``"reference"`` (the scalar sweep); the two
            visit replacements in the same order and are bit-identical.
    """
    from repro.tuning.registry import resolve

    pix = np.asarray(pixels, dtype=float)
    if pix.ndim != 2:
        raise ShapeError(f"expected (n, bands), got {pix.shape}")
    k = int(n_endmembers)
    if k < 2:
        raise ConfigurationError(f"n_endmembers must be >= 2, got {k}")
    if k > pix.shape[1] + 1:
        raise ConfigurationError(
            f"cannot span a {k}-vertex simplex with {pix.shape[1]} bands"
        )
    if k > pix.shape[0]:
        raise ConfigurationError(
            f"cannot pick {k} endmembers from {pix.shape[0]} pixels"
        )

    mean = mean_vector(pix)
    transform, _ = pct_transform(covariance_matrix(pix, mean), n_components=k - 1)
    reduced = apply_pct(pix, mean, transform)  # (n, k-1)

    current = atdca_pixels(pix, k).flat_indices.astype(np.int64)
    volume = simplex_volume(reduced[current])

    aug = np.hstack([np.ones((pix.shape[0], 1)), reduced])  # (n, k)
    screen = resolve("nfindr_screen", screen_variant).implementation()
    sweeps = 0
    improved = True
    while improved and sweeps < max_sweeps:
        sweeps += 1
        current, volume, improved = screen(reduced, aug, current, volume, k)
    return NFindrResult(
        flat_indices=current,
        signatures=pix[current].copy(),
        volume=volume,
        sweeps=sweeps,
    )


def nfindr(
    image: HyperspectralImage,
    n_endmembers: int,
    max_sweeps: int = 10,
    screen_variant: str = "batched",
) -> NFindrResult:
    """Run N-FINDR on a cube."""
    return nfindr_pixels(
        image.flatten_pixels(), n_endmembers, max_sweeps, screen_variant
    )
