"""Hetero-PCT (Algorithm 4): parallel PCT classification.

1. master scatters WEA partitions;
2. each worker builds a local SAD-unique spectral set;
3. the master merges the per-worker sets into one ``c``-member unique
   set (sequential — one of the steps that make PCT's SEQ share the
   largest of the four algorithms);
4–6. workers accumulate covariance sufficient statistics over their
   partitions; the master combines them (the paper parallelizes the
   covariance *sum* and serializes the combination);
7. the master eigendecomposes (sequential — "related to the number of
   spectral bands rather than the image size") and broadcasts the
   transform;
8. workers project their pixels;
9. workers label their pixels against the unique set in the
   PCT-reduced space and the master assembles the label image.
"""

from __future__ import annotations

import numpy as np

from repro.core.parallel_common import (
    charged_kernel,
    cost_model_of,
    distribute_row_blocks,
    master_only,
)
from repro.core.pct import DEFAULT_UNIQUE_THRESHOLD, PCTClassification
from repro.core.unique import UniqueSet, greedy_unique, merge_unique_sets
from repro.errors import ConfigurationError
from repro.hsi.cube import HyperspectralImage
from repro.hsi.metrics import sad_to_references
from repro.linalg.pca import (
    apply_pct,
    combine_covariance_sums,
    partial_covariance_sums,
    pct_transform,
)
from repro.mpi.communicator import Communicator, MessageContext
from repro.obs.trace import tracer_of
from repro.scheduling.static_part import RowPartition

__all__ = ["parallel_pct_program"]


def parallel_pct_program(
    ctx: MessageContext,
    partition: RowPartition,
    n_classes: int,
    image: HyperspectralImage | None = None,
    threshold: float = DEFAULT_UNIQUE_THRESHOLD,
) -> PCTClassification | None:
    """SPMD body of Hetero-PCT; returns the classification at the master."""
    if n_classes < 1:
        raise ConfigurationError(f"n_classes must be >= 1, got {n_classes}")
    comm = Communicator(ctx)
    cost = cost_model_of(ctx)
    tracer = tracer_of(ctx)
    master_only(ctx, image, "image")

    block = distribute_row_blocks(comm, image, partition)
    local = block.core_pixels
    bands = block.bands
    n_local = local.shape[0]

    # -- steps 2-3: local unique sets, merged at the master -------------------
    with tracer.span("pct.unique", rank=ctx.rank):
        with charged_kernel(
            ctx, "unique_set_scan",
            cost.unique_set_scan(n_local, bands, n_classes),
        ):
            if n_local:
                local_unique = greedy_unique(
                    local, threshold, max_keep=4 * n_classes
                )
                offset = block.halo.core_start * block.cols
                local_unique = UniqueSet(
                    signatures=local_unique.signatures,
                    indices=local_unique.indices + offset,
                )
            else:
                local_unique = None
        gathered_sets = comm.gather(
            None
            if local_unique is None
            else (local_unique.signatures, local_unique.indices)
        )

        if comm.is_master:
            sets = [
                UniqueSet(signatures=sig, indices=idx)
                for payload in gathered_sets
                if payload is not None
                for sig, idx in [payload]
            ]
            total_candidates = sum(s.count for s in sets)
            with charged_kernel(
                ctx,
                "dedup_unique_set",
                cost.dedup_unique_set(total_candidates, bands, kept=n_classes),
                sequential=True,
            ):
                unique = merge_unique_sets(sets, threshold, count=n_classes)
            unique_payload = (unique.signatures, unique.indices)
        else:
            unique_payload = None
        unique_payload = comm.bcast(unique_payload)
        unique = UniqueSet(signatures=unique_payload[0], indices=unique_payload[1])

    # -- steps 4-7: distributed covariance, sequential eigendecomposition ------
    with tracer.span("pct.covariance", rank=ctx.rank):
        with charged_kernel(
            ctx, "covariance_accumulate",
            cost.covariance_accumulate(n_local, bands),
        ):
            if n_local:
                sums = partial_covariance_sums(local)
            else:
                sums = (np.zeros(bands), np.zeros((bands, bands)), 0)
        all_sums = comm.gather(sums)

        if comm.is_master:
            with charged_kernel(
                ctx,
                "eigendecomposition",
                cost.covariance_accumulate(comm.size, bands)
                + cost.eigendecomposition(bands),
                sequential=True,
            ):
                mean, covariance = combine_covariance_sums(all_sums)
                transform, eigenvalues = pct_transform(
                    covariance, n_components=unique.count
                )
            stats_payload = (mean, transform, eigenvalues)
        else:
            stats_payload = None
        mean, transform, eigenvalues = comm.bcast(stats_payload)

    # -- steps 8-9: parallel projection and labelling ------------------------------
    with tracer.span("pct.project", rank=ctx.rank):
        with charged_kernel(
            ctx,
            "pct_projection",
            cost.pct_projection(n_local, bands, unique.count)
            + cost.classify_by_sad(n_local, unique.count, unique.count),
        ):
            if n_local:
                reduced = apply_pct(local, mean, transform)
                reduced_refs = apply_pct(unique.signatures, mean, transform)
                offset_vec = reduced.min(axis=0)
                # The SAD-positivity shift must be *global* to match the
                # sequential path; reduce the per-partition minima first.
                local_min = offset_vec
            else:
                reduced = None
                reduced_refs = None
                local_min = np.full(unique.count, np.inf)
        global_min = comm.allreduce(local_min, op=np.minimum)

        if n_local:
            shifted = reduced - global_min + 1.0
            shifted_refs = reduced_refs - global_min + 1.0
            angles = sad_to_references(shifted, shifted_refs)
            labels = np.argmin(angles, axis=1).astype(np.int64)
        else:
            labels = np.empty(0, dtype=np.int64)
        gathered_labels = comm.gather(labels)

    if not comm.is_master:
        return None
    label_map = np.concatenate(gathered_labels).reshape(
        block.total_rows, block.cols
    )
    return PCTClassification(
        labels=label_map,
        unique=unique,
        mean=np.asarray(mean),
        transform=np.asarray(transform),
        eigenvalues=np.asarray(eigenvalues),
    )
