"""Sequential UFCLS: unsupervised fully constrained least squares.

Algorithm 3's computational content: seed with the brightest pixel,
then repeatedly add the pixel whose fully constrained linear-mixture
reconstruction from the current target set has the largest residual —
least-squares error minimization replacing ATDCA's orthogonal
projection.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.atdca import TargetDetectionResult, _check_inputs
from repro.hsi.cube import HyperspectralImage
from repro.linalg.fcls import fcls_abundances, reconstruction_error
from repro.linalg.osp import brightest_pixel_index
from repro.tuning.registry import resolve
from repro.types import FloatArray

__all__ = ["ufcls_pixels", "ufcls", "fcls_error_image"]


def fcls_error_image(pixels: FloatArray, targets: FloatArray) -> FloatArray:
    """The UFCLS 'error image': per-pixel FCLS residual → ``(n,)``.

    Step 2 of Algorithm 3: each pixel is represented as a fully
    constrained (non-negative, sum-to-one) mixture of the current
    targets; the score is the squared reconstruction error.
    """
    abundances = fcls_abundances(pixels, targets)
    return reconstruction_error(pixels, targets, abundances)


def ufcls_pixels(
    pixels: FloatArray,
    n_targets: int,
    fcls_variant: str = "incremental",
) -> TargetDetectionResult:
    """Run UFCLS on a flat ``(n, bands)`` pixel matrix.

    ``fcls_variant`` names the ``fcls_solve`` registry variant:
    ``"incremental"`` (default) carries cross-products and the
    regularized Gram inverse across iterations (one gemv + a rank-1
    bordering update per new target — see
    :class:`repro.linalg.fcls.IncrementalFCLS`), while ``"reference"``
    rebuilds the design matrix each round (the rank-tolerant baseline
    the planner routes degenerate inputs to).  Both variants pick
    identical targets.
    """
    pix = _check_inputs(pixels, n_targets)
    indices: list[int] = []
    scores: list[float] = []

    first = brightest_pixel_index(pix)
    indices.append(first)
    scores.append(float(pix[first] @ pix[first]))

    solver = resolve("fcls_solve", fcls_variant).implementation()(pix)
    solver.add_target(pix[first])
    for k in range(1, n_targets):
        error = solver.error_image()
        nxt = int(np.argmax(error))
        indices.append(nxt)
        scores.append(float(error[nxt]))
        if k + 1 < n_targets:
            solver.add_target(pix[nxt])

    idx = np.asarray(indices, dtype=np.int64)
    return TargetDetectionResult(
        flat_indices=idx,
        signatures=pix[idx].copy(),
        scores=np.asarray(scores),
    )


def ufcls(
    image: HyperspectralImage,
    n_targets: int,
    fcls_variant: str = "incremental",
) -> TargetDetectionResult:
    """Run UFCLS on an image cube; adds (row, col) positions."""
    result = ufcls_pixels(image.flatten_pixels(), n_targets, fcls_variant)
    rows, cols = np.divmod(result.flat_indices, image.cols)
    return dataclasses.replace(
        result, positions=np.stack([rows, cols], axis=1)
    )
