"""Structuring elements for vector (hyperspectral) morphology.

A structuring element ``B`` defines the spatial neighbourhood over which
the cumulative SAD distance ``D_B`` (eq. 2) is accumulated and over
which erosion/dilation search for extrema.  Elements are small boolean
masks centred on the origin.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.types import BoolArray

__all__ = ["StructuringElement", "square", "cross", "disk"]


@dataclasses.dataclass(frozen=True)
class StructuringElement:
    """A flat structuring element: an odd-sized boolean mask.

    Attributes:
        mask: ``(h, w)`` boolean array, ``h`` and ``w`` odd, with the
            origin at the centre.  The centre cell need not be set, but
            conventionally is.
    """

    mask: BoolArray

    def __post_init__(self) -> None:
        mask = np.asarray(self.mask, dtype=bool)
        if mask.ndim != 2:
            raise ConfigurationError("structuring element mask must be 2-D")
        if mask.shape[0] % 2 == 0 or mask.shape[1] % 2 == 0:
            raise ConfigurationError(
                f"structuring element must have odd dimensions, got {mask.shape}"
            )
        if not mask.any():
            raise ConfigurationError("structuring element must cover >= 1 cell")
        object.__setattr__(self, "mask", mask)

    @property
    def shape(self) -> tuple[int, int]:
        return self.mask.shape  # type: ignore[return-value]

    @property
    def radius(self) -> int:
        """Maximum Chebyshev reach from the origin (for halo sizing)."""
        return max(self.mask.shape[0] // 2, self.mask.shape[1] // 2)

    @property
    def size(self) -> int:
        """Number of active cells."""
        return int(self.mask.sum())

    def offsets(self) -> list[tuple[int, int]]:
        """Active cell offsets relative to the origin, row-major order."""
        ch, cw = self.mask.shape[0] // 2, self.mask.shape[1] // 2
        rr, cc = np.nonzero(self.mask)
        return [(int(r) - ch, int(c) - cw) for r, c in zip(rr, cc)]

    def __repr__(self) -> str:
        return f"StructuringElement(shape={self.shape}, size={self.size})"


def square(size: int = 3) -> StructuringElement:
    """A ``size × size`` all-ones element (the paper's default B is 3×3)."""
    if size < 1 or size % 2 == 0:
        raise ConfigurationError(f"size must be odd and >= 1, got {size}")
    return StructuringElement(np.ones((size, size), dtype=bool))


def cross(size: int = 3) -> StructuringElement:
    """A plus-shaped element of the given odd size."""
    if size < 1 or size % 2 == 0:
        raise ConfigurationError(f"size must be odd and >= 1, got {size}")
    mask = np.zeros((size, size), dtype=bool)
    mask[size // 2, :] = True
    mask[:, size // 2] = True
    return StructuringElement(mask)


def disk(radius: int) -> StructuringElement:
    """A Euclidean disk of the given radius (radius 1 → 3×3 cross+centre)."""
    if radius < 0:
        raise ConfigurationError(f"radius must be >= 0, got {radius}")
    size = 2 * radius + 1
    r = np.arange(size) - radius
    mask = (r[:, None] ** 2 + r[None, :] ** 2) <= radius * radius
    return StructuringElement(mask)
