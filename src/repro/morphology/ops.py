"""Vector morphological operations on hyperspectral cubes.

Implements the paper's eqs. (2)–(5):

* ``D_B(F(x,y))`` — the cumulative SAD between a pixel and its
  B-neighbourhood (eq. 2);
* erosion / dilation — the neighbourhood pixel minimizing / maximizing
  ``D_B`` (eqs. 3–4), i.e. the spectrally *purest* / *most mixed*
  representative of the window;
* the morphological eccentricity index
  ``MEI(x,y) = SAD(erosion, dilation)`` (eq. 5), whose extrema
  Hetero-MORPH uses as endmember candidates.

Everything is vectorized: the D_B map is a sum of shifted-dot-product
arccosines (one pass per structuring-element offset), and the
erosion/dilation argmin/argmax scan the (small) window offset set once,
maintaining running best values — no per-pixel Python loops.

Border handling uses edge replication, matching the paper's use of
redundant overlap borders "to avoid accesses outside the local image
domain".
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ShapeError
from repro.morphology.structuring import StructuringElement
from repro.types import FloatArray, IntArray

__all__ = [
    "cumulative_sad_map",
    "MorphExtrema",
    "morph_extrema",
    "erosion",
    "dilation",
    "mei_scores",
    "edge_pad_into",
    "offset_angle_maps",
    "clamped_neighbor_indices",
    "unique_pair_angles",
    "unique_pair_mei",
    "extrema_positions",
]

_EPS = 1e-12


def _check_cube(cube: FloatArray) -> FloatArray:
    arr = np.asarray(cube, dtype=float)
    if arr.ndim != 3:
        raise ShapeError(f"expected (rows, cols, bands), got {arr.shape}")
    return arr


def _unit_vectors(cube: FloatArray) -> FloatArray:
    norms = np.linalg.norm(cube, axis=2, keepdims=True)
    return cube / np.maximum(norms, _EPS)


def _pad_edge(arr: FloatArray, radius_r: int, radius_c: int) -> FloatArray:
    return np.pad(
        arr, ((radius_r, radius_r), (radius_c, radius_c), (0, 0)), mode="edge"
    )


def cumulative_sad_map(cube: FloatArray, se: StructuringElement) -> FloatArray:
    """The ``D_B`` map (eq. 2): per-pixel sum of SAD to B-neighbours.

    Args:
        cube: ``(rows, cols, bands)``.
        se: the structuring element defining the neighbourhood.

    Returns:
        ``(rows, cols)`` of cumulative angles (radians).  Low values
        mark pixels spectrally similar to their neighbourhood (pure
        regions); high values mark mixed/transition pixels.
    """
    arr = _check_cube(cube)
    rows, cols, _ = arr.shape
    unit = _unit_vectors(arr)
    pr, pc = se.shape[0] // 2, se.shape[1] // 2
    padded = _pad_edge(unit, pr, pc)
    dmap = np.zeros((rows, cols))
    for dr, dc in se.offsets():
        if dr == 0 and dc == 0:
            continue  # SAD(x, x) = 0 contributes nothing
        shifted = padded[pr + dr : pr + dr + rows, pc + dc : pc + dc + cols]
        cos = np.einsum("ijk,ijk->ij", unit, shifted)
        np.clip(cos, -1.0, 1.0, out=cos)
        dmap += np.arccos(cos)
    return dmap


@dataclasses.dataclass(frozen=True)
class MorphExtrema:
    """Erosion/dilation results for one cube.

    Attributes:
        eroded: ``(rows, cols, bands)`` — each pixel replaced by the
            signature of its neighbourhood's D_B-minimizer (eq. 3).
        dilated: same with the D_B-maximizer (eq. 4).
        eroded_rows/eroded_cols/dilated_rows/dilated_cols: the spatial
            coordinates (clipped to the image domain) the extrema came
            from, for provenance and testing.
        dmap: the underlying ``D_B`` map.
    """

    eroded: FloatArray
    dilated: FloatArray
    eroded_rows: IntArray
    eroded_cols: IntArray
    dilated_rows: IntArray
    dilated_cols: IntArray
    dmap: FloatArray


def extrema_positions(
    dmap: FloatArray, se: StructuringElement
) -> tuple[IntArray, IntArray, IntArray, IntArray]:
    """The per-pixel D_B-extremal window positions → (er_r, er_c, di_r, di_c).

    The scan keeps, per pixel, the running min/max of the (edge-padded)
    ``D_B`` values over window offsets and the offset that achieved it
    (strict comparisons: ties resolve to the first offset in
    ``se.offsets()`` order); coordinates outside the image clip to the
    nearest valid pixel, consistent with the edge-replicated padding.
    """
    rows, cols = dmap.shape
    pr, pc = se.shape[0] // 2, se.shape[1] // 2
    dpad = np.pad(dmap, ((pr, pr), (pc, pc)), mode="edge")

    best_min = np.full((rows, cols), np.inf)
    best_max = np.full((rows, cols), -np.inf)
    min_dr = np.zeros((rows, cols), dtype=np.int64)
    min_dc = np.zeros((rows, cols), dtype=np.int64)
    max_dr = np.zeros((rows, cols), dtype=np.int64)
    max_dc = np.zeros((rows, cols), dtype=np.int64)

    for dr, dc in se.offsets():
        window = dpad[pr + dr : pr + dr + rows, pc + dc : pc + dc + cols]
        lower = window < best_min
        best_min = np.where(lower, window, best_min)
        min_dr = np.where(lower, dr, min_dr)
        min_dc = np.where(lower, dc, min_dc)
        higher = window > best_max
        best_max = np.where(higher, window, best_max)
        max_dr = np.where(higher, dr, max_dr)
        max_dc = np.where(higher, dc, max_dc)

    base_r = np.arange(rows)[:, None]
    base_c = np.arange(cols)[None, :]
    er_r = np.clip(base_r + min_dr, 0, rows - 1)
    er_c = np.clip(base_c + min_dc, 0, cols - 1)
    di_r = np.clip(base_r + max_dr, 0, rows - 1)
    di_c = np.clip(base_c + max_dc, 0, cols - 1)
    return er_r, er_c, di_r, di_c


def morph_extrema(cube: FloatArray, se: StructuringElement) -> MorphExtrema:
    """Compute erosion and dilation (eqs. 3–4) in one neighbourhood scan."""
    arr = _check_cube(cube)
    dmap = cumulative_sad_map(arr, se)
    er_r, er_c, di_r, di_c = extrema_positions(dmap, se)

    return MorphExtrema(
        eroded=arr[er_r, er_c],
        dilated=arr[di_r, di_c],
        eroded_rows=er_r,
        eroded_cols=er_c,
        dilated_rows=di_r,
        dilated_cols=di_c,
        dmap=dmap,
    )


def erosion(cube: FloatArray, se: StructuringElement) -> FloatArray:
    """``F ⊖ B`` (eq. 3): per-pixel neighbourhood D_B-minimizer signature."""
    return morph_extrema(cube, se).eroded


def dilation(cube: FloatArray, se: StructuringElement) -> FloatArray:
    """``F ⊕ B`` (eq. 4): per-pixel neighbourhood D_B-maximizer signature."""
    return morph_extrema(cube, se).dilated


def mei_scores(extrema: MorphExtrema) -> FloatArray:
    """``MEI(x,y) = SAD(eroded, dilated)`` (eq. 5) → ``(rows, cols)``."""
    e = extrema.eroded
    d = extrema.dilated
    en = np.linalg.norm(e, axis=2)
    dn = np.linalg.norm(d, axis=2)
    denom = np.maximum(en * dn, _EPS)
    cos = np.einsum("ijk,ijk->ij", e, d) / denom
    np.clip(cos, -1.0, 1.0, out=cos)
    return np.arccos(cos)


# --------------------------------------------------------------------------
# Fast-path primitives: the D_B map's per-offset angle fields come in
# mirror pairs — the angle field of offset ``(−dr,−dc)`` is the field of
# ``(dr,dc)`` shifted by ``(dr,dc)``, because both read the same
# unordered pixel pair and ``a·b`` / ``b·a`` are the same float sequence
# (elementwise products commute, reduction order is fixed by the band
# axis).  Only the clamped border strips pair different pixels; those
# are recomputed directly.  A symmetric structuring element therefore
# needs half the full-frame dot-product sweeps, bit-identical to the
# direct evaluation.  ``edge_pad_into`` supports reusing one padded
# buffer across passes instead of reallocating per pass.
# --------------------------------------------------------------------------


def edge_pad_into(
    out: FloatArray, cube: FloatArray, pr: int, pc: int
) -> FloatArray:
    """Edge-replicated pad of ``cube`` written into a preallocated buffer.

    Produces exactly :func:`numpy.pad`'s ``mode="edge"`` values (corners
    replicate corner pixels) without allocating a fresh padded array per
    call — ``out`` must be ``(rows+2·pr, cols+2·pc, bands)``.
    """
    rows, cols = cube.shape[:2]
    out[pr : pr + rows, pc : pc + cols] = cube
    if pr:
        out[:pr, pc : pc + cols] = cube[:1]
        out[pr + rows :, pc : pc + cols] = cube[-1:]
    if pc:
        out[:, :pc] = out[:, pc : pc + 1]
        out[:, pc + cols :] = out[:, pc + cols - 1 : pc + cols]
    return out


def _clamped_strip_angles(
    ang: FloatArray,
    gu: FloatArray,
    dr: int,
    dc: int,
    row_idx: IntArray,
    col_idx: IntArray,
) -> None:
    """Direct angles for the border strip ``row_idx × col_idx`` of ``ang``.

    Pairs each strip pixel with its clip-clamped ``(dr, dc)`` neighbour
    — the pixel edge-replicated padding would read — via the same
    cos/clip/arccos float sequence as the full-frame sweep.
    """
    rows, cols = ang.shape
    src_r = np.clip(row_idx + dr, 0, rows - 1)
    src_c = np.clip(col_idx + dc, 0, cols - 1)
    a = gu[row_idx[:, None], col_idx[None, :]]
    b = gu[src_r[:, None], src_c[None, :]]
    cos = np.einsum("ijk,ijk->ij", a, b)
    np.clip(cos, -1.0, 1.0, out=cos)
    ang[row_idx[:, None], col_idx[None, :]] = np.arccos(cos)


def offset_angle_maps(
    gu: FloatArray,
    padded: FloatArray,
    offsets: list[tuple[int, int]],
    pr: int,
    pc: int,
    cosbuf: FloatArray,
) -> list[FloatArray]:
    """Per-offset SAD angle maps of a unit-spectra frame, mirrors shared.

    ``gu`` is the ``(rows, cols, bands)`` unit frame, ``padded`` its
    edge-replicated pad (see :func:`edge_pad_into`), ``cosbuf`` a
    reusable ``(rows, cols)`` scratch.  For each offset the map holds
    ``arccos(clip(u(x) · u(x ⊕ offset)))``; when an offset's mirror was
    already computed, its map is the mirror's map shifted by the offset
    (interior — the identical unordered pair) with only the clamped
    border strips evaluated directly.  Bit-identical to computing every
    offset with a full-frame sweep.
    """
    rows, cols = gu.shape[:2]
    computed: dict[tuple[int, int], FloatArray] = {}
    maps: list[FloatArray] = []
    for dr, dc in offsets:
        lead = computed.get((-dr, -dc))
        ang = np.empty((rows, cols))
        if lead is not None:
            # ang[r, c] = lead[r+dr, c+dc] wherever the source index is
            # in bounds: both read the unordered pair {(r,c), (r+dr,c+dc)}.
            r0, r1 = max(0, -dr), rows + min(0, -dr)
            c0, c1 = max(0, -dc), cols + min(0, -dc)
            ang[r0:r1, c0:c1] = lead[r0 + dr : r1 + dr, c0 + dc : c1 + dc]
            all_cols = np.arange(cols)
            all_rows = np.arange(rows)
            if r0 > 0:
                _clamped_strip_angles(ang, gu, dr, dc, np.arange(r0), all_cols)
            if r1 < rows:
                _clamped_strip_angles(
                    ang, gu, dr, dc, np.arange(r1, rows), all_cols
                )
            if c0 > 0:
                _clamped_strip_angles(ang, gu, dr, dc, all_rows, np.arange(c0))
            if c1 < cols:
                _clamped_strip_angles(
                    ang, gu, dr, dc, all_rows, np.arange(c1, cols)
                )
        else:
            shifted = padded[pr + dr : pr + dr + rows, pc + dc : pc + dc + cols]
            np.einsum("ijk,ijk->ij", gu, shifted, out=cosbuf)
            np.clip(cosbuf, -1.0, 1.0, out=cosbuf)
            np.arccos(cosbuf, out=ang)
            computed[(dr, dc)] = ang
        maps.append(ang)
    return maps


# --------------------------------------------------------------------------
# Pair-deduplicated angles: once multiscale MEI passes start gathering
# (dilation is a selection), the frame holds many repeats of the same
# source pixels, and every repeated pixel-index pair would repeat the
# same O(bands) dot product.  These helpers compute each *distinct*
# unordered pair once and scatter the results back — bit-identical to
# the direct evaluation, because a SAD between two fixed spectra does
# not depend on which (row, col) asked for it, and ``a·b`` / ``b·a``
# are the same float sequence.
# --------------------------------------------------------------------------


def clamped_neighbor_indices(
    rows: int, cols: int, se: StructuringElement
) -> list[IntArray]:
    """Flat neighbour index maps, one per non-center SE offset.

    Entry ``k`` maps flat pixel ``p`` to the flat index of its
    neighbour under offset ``k``, with out-of-image coordinates clipped
    — exactly the pixel the edge-replicated padding of
    :func:`cumulative_sad_map` reads.
    """
    maps: list[IntArray] = []
    base_r = np.arange(rows)[:, None]
    base_c = np.arange(cols)[None, :]
    for dr, dc in se.offsets():
        if dr == 0 and dc == 0:
            continue
        r = np.clip(base_r + dr, 0, rows - 1)
        c = np.clip(base_c + dc, 0, cols - 1)
        maps.append((r * cols + c).ravel())
    return maps


def _gathered_rows(
    src: FloatArray,
    idx: IntArray,
    scratch: dict[str, FloatArray] | None,
    key: str,
) -> FloatArray:
    """``src[idx]`` routed through a caller-owned growable scratch buffer.

    Large varying-size fancy-index gathers allocate (and first-touch)
    fresh pages on every call; ``np.take(..., out=)`` into a reused
    buffer pays that cost once.  ``scratch`` maps ``key`` to the buffer,
    grown when too small; ``None`` falls back to plain indexing.
    """
    if scratch is None:
        return src[idx]
    buf = scratch.get(key)
    if buf is None or buf.shape[0] < idx.shape[0] or buf.shape[1] != src.shape[1]:
        buf = np.empty((idx.shape[0], src.shape[1]))
        scratch[key] = buf
    view = buf[: idx.shape[0]]
    # mode="clip" writes straight into ``out`` (the default "raise" mode
    # stages through a temporary); indices here are always in range.
    np.take(src, idx, axis=0, out=view, mode="clip")
    return view


def unique_pair_angles(
    left: IntArray,
    right: IntArray,
    unit_flat: FloatArray,
    scratch: dict[str, FloatArray] | None = None,
) -> FloatArray:
    """``arccos(clip(u_left · u_right))`` per pair, each distinct pair once.

    ``left``/``right`` index rows of ``unit_flat`` (unit spectra); pairs
    are deduplicated on unordered keys before the O(bands) dot products,
    then scattered back to per-pair order.  Pass a ``scratch`` dict to
    reuse the gather buffers across calls (see :func:`_gathered_rows`).
    """
    n_ref = unit_flat.shape[0]
    lo = np.minimum(left, right)
    hi = np.maximum(left, right)
    uniq, inverse = np.unique(lo * n_ref + hi, return_inverse=True)
    ul, ur = np.divmod(uniq, n_ref)
    cos = np.einsum(
        "ij,ij->i",
        _gathered_rows(unit_flat, ul, scratch, "pair_left"),
        _gathered_rows(unit_flat, ur, scratch, "pair_right"),
    )
    np.clip(cos, -1.0, 1.0, out=cos)
    return np.arccos(cos)[inverse]


def unique_pair_mei(
    left: IntArray,
    right: IntArray,
    pixels_flat: FloatArray,
    norms_flat: FloatArray,
    scratch: dict[str, FloatArray] | None = None,
) -> FloatArray:
    """Eq. 5 SAD between raw-spectra pairs, each distinct pair once.

    Matches :func:`mei_scores` float-for-float: the cosine is the raw
    dot over ``max(‖e‖·‖d‖, eps)`` with precomputed norms.  ``scratch``
    reuses gather buffers across calls (shared with
    :func:`unique_pair_angles` — the buffers grow to the larger need).
    """
    n_ref = pixels_flat.shape[0]
    lo = np.minimum(left, right)
    hi = np.maximum(left, right)
    uniq, inverse = np.unique(lo * n_ref + hi, return_inverse=True)
    ul, ur = np.divmod(uniq, n_ref)
    denom = np.maximum(norms_flat[ul] * norms_flat[ur], _EPS)
    cos = np.einsum(
        "ij,ij->i",
        _gathered_rows(pixels_flat, ul, scratch, "pair_left"),
        _gathered_rows(pixels_flat, ur, scratch, "pair_right"),
    ) / denom
    np.clip(cos, -1.0, 1.0, out=cos)
    return np.arccos(cos)[inverse]
