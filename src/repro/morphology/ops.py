"""Vector morphological operations on hyperspectral cubes.

Implements the paper's eqs. (2)–(5):

* ``D_B(F(x,y))`` — the cumulative SAD between a pixel and its
  B-neighbourhood (eq. 2);
* erosion / dilation — the neighbourhood pixel minimizing / maximizing
  ``D_B`` (eqs. 3–4), i.e. the spectrally *purest* / *most mixed*
  representative of the window;
* the morphological eccentricity index
  ``MEI(x,y) = SAD(erosion, dilation)`` (eq. 5), whose extrema
  Hetero-MORPH uses as endmember candidates.

Everything is vectorized: the D_B map is a sum of shifted-dot-product
arccosines (one pass per structuring-element offset), and the
erosion/dilation argmin/argmax scan the (small) window offset set once,
maintaining running best values — no per-pixel Python loops.

Border handling uses edge replication, matching the paper's use of
redundant overlap borders "to avoid accesses outside the local image
domain".
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ShapeError
from repro.morphology.structuring import StructuringElement
from repro.types import FloatArray, IntArray

__all__ = [
    "cumulative_sad_map",
    "MorphExtrema",
    "morph_extrema",
    "erosion",
    "dilation",
    "mei_scores",
]

_EPS = 1e-12


def _check_cube(cube: FloatArray) -> FloatArray:
    arr = np.asarray(cube, dtype=float)
    if arr.ndim != 3:
        raise ShapeError(f"expected (rows, cols, bands), got {arr.shape}")
    return arr


def _unit_vectors(cube: FloatArray) -> FloatArray:
    norms = np.linalg.norm(cube, axis=2, keepdims=True)
    return cube / np.maximum(norms, _EPS)


def _pad_edge(arr: FloatArray, radius_r: int, radius_c: int) -> FloatArray:
    return np.pad(
        arr, ((radius_r, radius_r), (radius_c, radius_c), (0, 0)), mode="edge"
    )


def cumulative_sad_map(cube: FloatArray, se: StructuringElement) -> FloatArray:
    """The ``D_B`` map (eq. 2): per-pixel sum of SAD to B-neighbours.

    Args:
        cube: ``(rows, cols, bands)``.
        se: the structuring element defining the neighbourhood.

    Returns:
        ``(rows, cols)`` of cumulative angles (radians).  Low values
        mark pixels spectrally similar to their neighbourhood (pure
        regions); high values mark mixed/transition pixels.
    """
    arr = _check_cube(cube)
    rows, cols, _ = arr.shape
    unit = _unit_vectors(arr)
    pr, pc = se.shape[0] // 2, se.shape[1] // 2
    padded = _pad_edge(unit, pr, pc)
    dmap = np.zeros((rows, cols))
    for dr, dc in se.offsets():
        if dr == 0 and dc == 0:
            continue  # SAD(x, x) = 0 contributes nothing
        shifted = padded[pr + dr : pr + dr + rows, pc + dc : pc + dc + cols]
        cos = np.einsum("ijk,ijk->ij", unit, shifted)
        np.clip(cos, -1.0, 1.0, out=cos)
        dmap += np.arccos(cos)
    return dmap


@dataclasses.dataclass(frozen=True)
class MorphExtrema:
    """Erosion/dilation results for one cube.

    Attributes:
        eroded: ``(rows, cols, bands)`` — each pixel replaced by the
            signature of its neighbourhood's D_B-minimizer (eq. 3).
        dilated: same with the D_B-maximizer (eq. 4).
        eroded_rows/eroded_cols/dilated_rows/dilated_cols: the spatial
            coordinates (clipped to the image domain) the extrema came
            from, for provenance and testing.
        dmap: the underlying ``D_B`` map.
    """

    eroded: FloatArray
    dilated: FloatArray
    eroded_rows: IntArray
    eroded_cols: IntArray
    dilated_rows: IntArray
    dilated_cols: IntArray
    dmap: FloatArray


def morph_extrema(cube: FloatArray, se: StructuringElement) -> MorphExtrema:
    """Compute erosion and dilation (eqs. 3–4) in one neighbourhood scan.

    The scan keeps, per pixel, the running min/max of the (edge-padded)
    ``D_B`` values over window offsets and the offset that achieved it;
    coordinates outside the image clip to the nearest valid pixel,
    consistent with the edge-replicated padding.
    """
    arr = _check_cube(cube)
    rows, cols, _ = arr.shape
    dmap = cumulative_sad_map(arr, se)
    pr, pc = se.shape[0] // 2, se.shape[1] // 2
    dpad = np.pad(dmap, ((pr, pr), (pc, pc)), mode="edge")

    best_min = np.full((rows, cols), np.inf)
    best_max = np.full((rows, cols), -np.inf)
    min_dr = np.zeros((rows, cols), dtype=np.int64)
    min_dc = np.zeros((rows, cols), dtype=np.int64)
    max_dr = np.zeros((rows, cols), dtype=np.int64)
    max_dc = np.zeros((rows, cols), dtype=np.int64)

    for dr, dc in se.offsets():
        window = dpad[pr + dr : pr + dr + rows, pc + dc : pc + dc + cols]
        lower = window < best_min
        best_min = np.where(lower, window, best_min)
        min_dr = np.where(lower, dr, min_dr)
        min_dc = np.where(lower, dc, min_dc)
        higher = window > best_max
        best_max = np.where(higher, window, best_max)
        max_dr = np.where(higher, dr, max_dr)
        max_dc = np.where(higher, dc, max_dc)

    base_r = np.arange(rows)[:, None]
    base_c = np.arange(cols)[None, :]
    er_r = np.clip(base_r + min_dr, 0, rows - 1)
    er_c = np.clip(base_c + min_dc, 0, cols - 1)
    di_r = np.clip(base_r + max_dr, 0, rows - 1)
    di_c = np.clip(base_c + max_dc, 0, cols - 1)

    return MorphExtrema(
        eroded=arr[er_r, er_c],
        dilated=arr[di_r, di_c],
        eroded_rows=er_r,
        eroded_cols=er_c,
        dilated_rows=di_r,
        dilated_cols=di_c,
        dmap=dmap,
    )


def erosion(cube: FloatArray, se: StructuringElement) -> FloatArray:
    """``F ⊖ B`` (eq. 3): per-pixel neighbourhood D_B-minimizer signature."""
    return morph_extrema(cube, se).eroded


def dilation(cube: FloatArray, se: StructuringElement) -> FloatArray:
    """``F ⊕ B`` (eq. 4): per-pixel neighbourhood D_B-maximizer signature."""
    return morph_extrema(cube, se).dilated


def mei_scores(extrema: MorphExtrema) -> FloatArray:
    """``MEI(x,y) = SAD(eroded, dilated)`` (eq. 5) → ``(rows, cols)``."""
    e = extrema.eroded
    d = extrema.dilated
    en = np.linalg.norm(e, axis=2)
    dn = np.linalg.norm(d, axis=2)
    denom = np.maximum(en * dn, _EPS)
    cos = np.einsum("ijk,ijk->ij", e, d) / denom
    np.clip(cos, -1.0, 1.0, out=cos)
    return np.arccos(cos)
