"""Vector morphology: structuring elements, erosion/dilation/MEI, halos."""

from repro.morphology.halo import (
    HaloBlock,
    extract_halo_block,
    halo_depth,
    redundant_fraction,
)
from repro.morphology.ops import (
    MorphExtrema,
    cumulative_sad_map,
    dilation,
    erosion,
    mei_scores,
    morph_extrema,
)
from repro.morphology.structuring import StructuringElement, cross, disk, square

__all__ = [
    "HaloBlock",
    "MorphExtrema",
    "StructuringElement",
    "cross",
    "cumulative_sad_map",
    "dilation",
    "disk",
    "erosion",
    "extract_halo_block",
    "halo_depth",
    "mei_scores",
    "morph_extrema",
    "redundant_fraction",
    "square",
]
