"""Overlap borders (halos) for parallel windowed morphology.

Hetero-MORPH partitions the scene into row slabs *with overlap borders*
so each worker can evaluate its windowed kernels without talking to its
neighbours — the paper's explicit trade of redundant computation for
reduced communication.  An iterated dilation of depth ``I_max`` with a
structuring element of radius ``r`` needs ``r · I_max`` extra rows on
each interior side.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.morphology.structuring import StructuringElement
from repro.types import FloatArray

__all__ = ["halo_depth", "HaloBlock", "extract_halo_block", "redundant_fraction"]


def halo_depth(se: StructuringElement, iterations: int) -> int:
    """Rows of overlap needed per interior edge for ``iterations`` passes."""
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    return se.radius * iterations


@dataclasses.dataclass(frozen=True)
class HaloBlock:
    """A row slab extended with overlap borders.

    Attributes:
        data: ``(core + top + bottom, cols, bands)`` pixel block.
        core_start, core_stop: global row range of the *owned* rows.
        top, bottom: number of borrowed rows on each side actually
            present (zero at the image boundary).
    """

    data: FloatArray
    core_start: int
    core_stop: int
    top: int
    bottom: int

    @property
    def core_rows(self) -> int:
        return self.core_stop - self.core_start

    @property
    def total_rows(self) -> int:
        return int(self.data.shape[0])

    def core_view(self, array: FloatArray | None = None) -> FloatArray:
        """Strip the halo: the owned-row slice of ``array`` (default: data).

        Accepts any array whose first axis matches :attr:`total_rows`,
        e.g. a per-pixel score map computed over the extended block.
        """
        arr = self.data if array is None else np.asarray(array)
        if arr.shape[0] != self.total_rows:
            raise ShapeError(
                f"array has {arr.shape[0]} rows, block has {self.total_rows}"
            )
        return arr[self.top : self.top + self.core_rows]

    def to_global_row(self, local_row: int) -> int:
        """Map a row index of :attr:`data` to a global scene row."""
        if not 0 <= local_row < self.total_rows:
            raise ShapeError(f"local row {local_row} outside block")
        return self.core_start - self.top + local_row


def extract_halo_block(
    cube: FloatArray, start: int, stop: int, depth: int
) -> HaloBlock:
    """Cut rows ``[start, stop)`` plus up to ``depth`` border rows each side.

    Borders are clipped at the image boundary (no wraparound); the
    windowed kernels use edge replication there, matching the
    sequential reference.
    """
    arr = np.asarray(cube)
    if arr.ndim != 3:
        raise ShapeError(f"expected (rows, cols, bands), got {arr.shape}")
    rows = arr.shape[0]
    if not 0 <= start < stop <= rows:
        raise ShapeError(f"row range [{start}, {stop}) invalid for {rows} rows")
    if depth < 0:
        raise ConfigurationError(f"halo depth must be >= 0, got {depth}")
    top = min(depth, start)
    bottom = min(depth, rows - stop)
    return HaloBlock(
        data=arr[start - top : stop + bottom],
        core_start=start,
        core_stop=stop,
        top=top,
        bottom=bottom,
    )


def redundant_fraction(blocks: list[HaloBlock]) -> float:
    """Fraction of total processed rows that are redundant halo rows.

    The quantity the paper alludes to when noting MORPH "introduces
    redundant information expected to slow down the computation".
    """
    if not blocks:
        raise ConfigurationError("no blocks given")
    total = sum(b.total_rows for b in blocks)
    core = sum(b.core_rows for b in blocks)
    return (total - core) / total if total else 0.0
