"""Declarative resilience policies: retry budgets and op deadlines.

A :class:`ResiliencePolicy` bundles the two knobs the detection layer
used to take as ad-hoc arguments — a :class:`RetryPolicy` (bounded
exponential backoff for transient losses) and a :class:`DeadlinePolicy`
(per-operation send/recv deadlines) — into one JSON-serializable object
that travels with fault plans (``FaultPlan.policy``) exactly like the
fault specifications themselves.  The same policy file therefore
produces the same retry/timeout behaviour on the virtual-time engine
and the wall-clock backend.

JSON shape (every block optional; omitted fields keep their defaults)::

    {
      "name": "tolerant",
      "retry": {"max_attempts": 4, "backoff_s": 0.01, "backoff_factor": 2.0},
      "deadline": {"send_timeout_s": 0.25, "recv_timeout_s": 0.25}
    }
"""

from __future__ import annotations

import dataclasses
import json
import math
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError, FaultPlanError

__all__ = [
    "RetryPolicy",
    "DeadlinePolicy",
    "ResiliencePolicy",
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_POLICY",
    "load_policy",
    "main",
]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient faults.

    Attributes:
        max_attempts: total tries (first attempt included).
        backoff_s: wait charged before the first retry.
        backoff_factor: multiplier applied to the wait per retry.
    """

    max_attempts: int = 4
    backoff_s: float = 0.01
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0 or self.backoff_factor <= 0:
            raise ConfigurationError(
                f"invalid backoff ({self.backoff_s}s × {self.backoff_factor})"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff charged after failed attempt ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_factor ** (attempt - 1)


@dataclasses.dataclass(frozen=True)
class DeadlinePolicy:
    """Per-operation deadlines for the detection helpers.

    ``None`` disables the deadline for that operation class (block
    until the router's deadlock detector fires).  On the virtual-time
    engine deadlines are virtual seconds (deterministic); on the
    wall-clock backend they are wall seconds measured on the monotonic
    clock.
    """

    send_timeout_s: float | None = None
    recv_timeout_s: float | None = None

    def __post_init__(self) -> None:
        for name in ("send_timeout_s", "recv_timeout_s"):
            value = getattr(self, name)
            if value is not None and not (
                math.isfinite(value) and value > 0
            ):
                raise ConfigurationError(
                    f"{name} must be finite and > 0 or None, got {value}"
                )


DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclasses.dataclass(frozen=True)
class ResiliencePolicy:
    """A named, serializable (retry, deadline) pair.

    The detection helpers accept this wherever they accept a bare
    :class:`RetryPolicy`, deriving the missing deadline from the
    ``deadline`` block — so call sites carry one object instead of a
    growing argument list.
    """

    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    deadline: DeadlinePolicy = DeadlinePolicy()
    name: str = ""

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.name:
            out["name"] = self.name
        out["retry"] = {
            "max_attempts": self.retry.max_attempts,
            "backoff_s": self.retry.backoff_s,
            "backoff_factor": self.retry.backoff_factor,
        }
        deadline = {
            k: v
            for k, v in (
                ("send_timeout_s", self.deadline.send_timeout_s),
                ("recv_timeout_s", self.deadline.recv_timeout_s),
            )
            if v is not None
        }
        out["deadline"] = deadline
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ResiliencePolicy":
        if not isinstance(doc, Mapping):
            raise FaultPlanError(
                f"policy must be a mapping, got {type(doc).__name__}"
            )
        known = {"name", "retry", "deadline"}
        unknown = set(doc) - known
        if unknown:
            raise FaultPlanError(
                f"policy: unknown fields {sorted(unknown)} "
                f"(expected a subset of {sorted(known)})"
            )

        def _block(key: str, fields: tuple[str, ...]) -> dict[str, Any]:
            block = doc.get(key, {})
            if not isinstance(block, Mapping):
                raise FaultPlanError(
                    f"policy.{key} must be a mapping, "
                    f"got {type(block).__name__}"
                )
            bad = set(block) - set(fields)
            if bad:
                raise FaultPlanError(
                    f"policy.{key}: unknown fields {sorted(bad)}"
                )
            return dict(block)

        try:
            retry = RetryPolicy(
                **_block("retry", ("max_attempts", "backoff_s", "backoff_factor"))
            )
            deadline = DeadlinePolicy(
                **_block("deadline", ("send_timeout_s", "recv_timeout_s"))
            )
        except ConfigurationError as exc:
            raise FaultPlanError(f"policy: {exc}") from exc
        return cls(retry=retry, deadline=deadline, name=str(doc.get("name", "")))


DEFAULT_POLICY = ResiliencePolicy(name="default")


def retry_of(policy: "RetryPolicy | ResiliencePolicy | None") -> RetryPolicy:
    """Normalize either policy flavour to its retry block."""
    if policy is None:
        return DEFAULT_RETRY_POLICY
    if isinstance(policy, ResiliencePolicy):
        return policy.retry
    return policy


def deadline_of(
    policy: "RetryPolicy | ResiliencePolicy | None",
) -> DeadlinePolicy:
    """Normalize either policy flavour to its deadline block."""
    if isinstance(policy, ResiliencePolicy):
        return policy.deadline
    return DeadlinePolicy()


def load_policy(path: str | Path) -> ResiliencePolicy:
    """Read and validate a JSON resilience policy file."""
    source = Path(path)
    try:
        doc = json.loads(source.read_text(encoding="utf-8"))
    except OSError as exc:
        raise FaultPlanError(f"cannot read policy {source}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FaultPlanError(
            f"policy {source} is not valid JSON: {exc}"
        ) from exc
    policy = ResiliencePolicy.from_dict(doc)
    if not policy.name:
        policy = dataclasses.replace(policy, name=source.stem)
    return policy


def describe_policy(policy: ResiliencePolicy) -> str:
    """One-screen human-readable policy summary."""
    retry, deadline = policy.retry, policy.deadline
    backoffs = ", ".join(
        f"{retry.backoff_for(a):g}s"
        for a in range(1, min(retry.max_attempts, 4))
    )
    lines = [
        f"policy {policy.name or '(unnamed)'}:",
        f"  retry: {retry.max_attempts} attempts, "
        f"backoff {retry.backoff_s:g}s x{retry.backoff_factor:g}"
        + (f" ({backoffs}, ...)" if backoffs else ""),
        "  deadline: "
        + ", ".join(
            f"{kind}="
            + ("none" if value is None else f"{value:g}s")
            for kind, value in (
                ("send", deadline.send_timeout_s),
                ("recv", deadline.recv_timeout_s),
            )
        ),
    ]
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.faults policy <show|validate> [FILE|--default]``"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults policy",
        description="Inspect and validate JSON resilience policies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_show = sub.add_parser("show", help="parse a policy and print it")
    p_show.add_argument("file", nargs="?", default=None)
    p_show.add_argument("--default", action="store_true",
                        help="show the built-in default policy")
    p_val = sub.add_parser("validate", help="exit 0 iff the file parses")
    p_val.add_argument("file")
    args = parser.parse_args(argv)

    if args.command == "show":
        if args.default or args.file is None:
            policy = DEFAULT_POLICY
        else:
            try:
                policy = load_policy(args.file)
            except FaultPlanError as exc:
                print(f"invalid policy: {exc}", file=sys.stderr)
                return 1
        print(describe_policy(policy))
        return 0
    try:
        policy = load_policy(args.file)
    except FaultPlanError as exc:
        print(f"invalid policy: {exc}", file=sys.stderr)
        return 1
    print(f"ok: {describe_policy(policy)}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
