"""Performance-adaptive repartitioning: respond to stragglers mid-run.

PR 3's recovery driver reacts to *crashes*; this module extends the
same repartition + rescatter seam to *slowed-but-alive* ranks, closing
the ROADMAP's "crash-only → performance-adaptive" item.  The pieces:

* The :class:`~repro.obs.health.HealthMonitor` (PR 6) already flags a
  drifting rank deterministically — the bounded relative error of an op
  slowed by factor ``f`` is ``(f-1)/f`` regardless of its absolute
  duration, so the flag fires at the same subject-op index on the
  virtual-time engine and the wall-clock backend.
* At every iteration boundary of the checkpointed detectors (right
  after the master saved its checkpoint), an adaptive run executes one
  extra collective round: each rank gathers its *own* health flag to
  the master, the master picks the lowest-ranked newly-drifted rank
  (deterministic tie-breaking), and broadcasts the decision.
* On a positive decision **every** rank raises
  :class:`~repro.errors.RepartitionSignal` right after the broadcast
  completes locally — a cooperative exit both backends retire without
  aborting the router, so no in-flight tree forward is killed.
* The recovery driver catches the signal, folds the estimated slowdown
  into its *model* platform via
  :func:`repro.cluster.perturb.scale_rank_compute` (the real platform —
  and hence the engine's charging basis — is untouched: the node did
  not change, our calibration of it did), re-runs WEA partitioning on
  the edited model, and resumes from the checkpoint.

The slowdown estimate inverts the monitor's *last* per-op relative
error: for a constant factor ``f`` the last error is exactly
``(f-1)/f``, so ``f = 1/(1 - last)`` recovers the factor exactly, where
the still-converging EWMA would under-correct.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import ConfigurationError, RepartitionSignal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.communicator import Communicator
    from repro.obs.health import HealthMonitor

__all__ = [
    "AdaptiveConfig",
    "AdaptationEvent",
    "AdaptiveController",
    "RepartitionSignal",
]


@dataclasses.dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning for the adaptive repartitioner.

    Attributes:
        min_factor: smallest estimated slowdown worth a repartition —
            below this the imbalance costs less than the restart.
        max_factor: cap on the folded-in slowdown estimate (guards the
            ``1/(1-e)`` inversion as ``e -> 1``).
        max_adaptations: total repartition budget for one run.
    """

    min_factor: float = 1.2
    max_factor: float = 64.0
    max_adaptations: int = 4

    def __post_init__(self) -> None:
        if self.min_factor <= 1.0:
            raise ConfigurationError(
                f"min_factor must be > 1, got {self.min_factor}"
            )
        if self.max_factor < self.min_factor:
            raise ConfigurationError(
                f"max_factor must be >= min_factor, got {self.max_factor}"
            )
        if self.max_adaptations < 1:
            raise ConfigurationError(
                f"max_adaptations must be >= 1, got {self.max_adaptations}"
            )


@dataclasses.dataclass(frozen=True)
class AdaptationEvent:
    """One committed repartition decision.

    Attributes:
        step: completed iteration count the run resumes from.
        rank: ORIGINAL id of the drifting rank.
        dense_rank: the rank's id in the attempt that detected it.
        factor: slowdown factor folded into the model platform.
        last_error: the per-op relative error the factor was inverted
            from.
    """

    step: int
    rank: int
    dense_rank: int
    factor: float
    last_error: float


class AdaptiveController:
    """Coordinates iteration-boundary repartition decisions (SPMD-safe).

    One controller spans a whole multi-attempt adaptive run; the
    recovery driver calls :meth:`attach` before each attempt to bind
    the health monitor and the attempt's dense→original rank mapping,
    and the parallel programs call :meth:`sync` at iteration
    boundaries.  All ranks share this object (both backends run ranks
    as threads), but per-rank reads only touch the rank's own health
    subject, so the gathered reports — and therefore the decision —
    are deterministic.

    Autotuned runs (``run_with_recovery(..., tuning=...)``) also log
    each post-seam planner decision here via :meth:`note_retune`, so a
    drift-adapted run exposes the full re-optimization history.
    """

    def __init__(self, config: AdaptiveConfig | None = None) -> None:
        self.config = config or AdaptiveConfig()
        self._lock = threading.Lock()
        self._monitor: "HealthMonitor | None" = None
        self._rank_map: tuple[int, ...] | None = None
        self._adapted: dict[int, float] = {}
        self._events: list[AdaptationEvent] = []
        self._retunes: list[str] = []

    # -- binding -------------------------------------------------------------
    def attach(
        self,
        monitor: "HealthMonitor | None" = None,
        rank_map: Sequence[int] | None = None,
    ) -> "AdaptiveController":
        """Bind the detector and the attempt's dense→original mapping
        (``None`` = identity).  Called once per recovery attempt."""
        with self._lock:
            if monitor is not None:
                self._monitor = monitor
            self._rank_map = tuple(rank_map) if rank_map is not None else None
        return self

    def _original(self, dense_rank: int) -> int:
        if self._rank_map is None:
            return dense_rank
        return self._rank_map[dense_rank]

    # -- reading -------------------------------------------------------------
    @property
    def events(self) -> list[AdaptationEvent]:
        with self._lock:
            return list(self._events)

    @property
    def adapted(self) -> dict[int, float]:
        """Original rank id → cumulative folded-in slowdown factor."""
        with self._lock:
            return dict(self._adapted)

    @property
    def retunes(self) -> list[str]:
        """Partition variants the autotuning planner chose on each
        post-adaptation re-plan, in order (tuned runs only)."""
        with self._lock:
            return list(self._retunes)

    def note_retune(self, partition_variant: str) -> None:
        """Record that the recovery driver re-ran the planner after an
        adaptation/recovery seam and got ``partition_variant``."""
        with self._lock:
            self._retunes.append(str(partition_variant))

    # -- the decision procedure ----------------------------------------------
    def estimate_factor(self, last_error: float) -> float:
        """Invert the bounded relative error to a slowdown factor.

        ``e = (f-1)/f  =>  f = 1/(1-e)``, clamped to
        ``[1, max_factor]``.
        """
        cap = 1.0 - 1.0 / self.config.max_factor
        e = min(max(float(last_error), 0.0), cap)
        return 1.0 / (1.0 - e)

    def self_report(self, rank: int) -> tuple[bool, float]:
        """This rank's own ``(flagged, last_rel_error)`` health state.

        Subject ``rank:<r>`` is only updated by rank ``r``'s own
        compute observations, so a rank reading itself at an iteration
        boundary sees the same state on both backends.
        """
        monitor = self._monitor
        if monitor is None:
            return (False, 0.0)
        snap = monitor.subject_snapshot(f"rank:{rank}")
        if snap is None:
            return (False, 0.0)
        return (bool(snap["flagged"]), float(snap["last_rel_error"]))

    def decide(
        self, reports: Sequence[tuple[bool, float]], step: int
    ) -> tuple[int, float, float] | None:
        """Master-side: pick the next rank to adapt, or ``None``.

        ``reports[r]`` is dense rank ``r``'s self-report.  The winner
        is the *lowest* dense rank that is flagged, not yet adapted
        (by original id, so a rank is adapted at most once per run),
        and whose estimated factor clears ``min_factor`` — a total
        order, so the decision is deterministic.  Returns
        ``(dense_rank, factor, last_error)``.
        """
        cfg = self.config
        with self._lock:
            if len(self._events) >= cfg.max_adaptations:
                return None
            for dense, (flagged, last_error) in enumerate(reports):
                if not flagged:
                    continue
                orig = (
                    dense if self._rank_map is None else self._rank_map[dense]
                )
                if orig in self._adapted:
                    continue
                factor = self.estimate_factor(last_error)
                if factor < cfg.min_factor:
                    continue
                return (dense, factor, float(last_error))
        return None

    def commit(
        self, dense_rank: int, factor: float, last_error: float, step: int
    ) -> None:
        """Record a decision as applied.  Called by the recovery driver
        when it catches the signal — not by :meth:`sync` before the
        broadcast — so a crash that preempts the coordinated exit
        leaves no phantom adaptation behind."""
        with self._lock:
            orig = self._original(dense_rank)
            self._adapted[orig] = self._adapted.get(orig, 1.0) * factor
            self._events.append(
                AdaptationEvent(
                    step=step,
                    rank=orig,
                    dense_rank=dense_rank,
                    factor=factor,
                    last_error=last_error,
                )
            )

    # -- the SPMD sync point ---------------------------------------------------
    def sync(self, ctx: Any, comm: "Communicator", step: int) -> None:
        """Iteration-boundary repartition round; all ranks must call.

        Gathers per-rank self-reports to the master, broadcasts the
        master's decision, and on a positive decision raises
        :class:`RepartitionSignal` on *every* rank — after the
        broadcast has completed locally, so no rank is left blocked
        and the backends can retire the program without an abort.
        """
        report = self.self_report(ctx.rank)
        gathered = comm.gather(report)
        decision = None
        if comm.is_master:
            decision = self.decide(gathered, step)
        decision = comm.bcast(decision)
        if decision is None:
            return
        dense_rank, factor, last_error = decision
        raise RepartitionSignal(
            rank=dense_rank, factor=factor, step=step, ewma=last_error
        )
