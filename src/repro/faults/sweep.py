"""Chaos-sweep harness: fault-plan grids through adaptive recovery.

A sweep *grid* (JSON) names a scene, a platform, one or more detector
algorithms/backends, and up to four fault axes — ``crash`` ×
``slowdown`` × ``link_degrade`` × ``delay`` — each a list of options
(``null`` = that axis inactive).  The harness enumerates the cross
product in a fixed order and, per cell:

1. builds the cell's :class:`~repro.faults.plan.FaultPlan` and runs
   the fault-tolerant driver **with** adaptive repartitioning;
2. on the sim backend, also runs the same plan **without** adaptation
   and replays the cell's *what-if twin* (``rank_slowdown`` →
   ``rank_compute_scale``, ``link_degrade`` → ``link_scale``) over a
   clean traced baseline — the model-side prediction of the no-adapt
   perturbed makespan (crashes and delays have no twin);
3. checks the detection output byte-identically against the
   sequential reference.

Two CI invariants gate the result (:func:`sweep_gate`):

* **result equality** — every cell's output equals the sequential
  reference, adaptation or not;
* **makespan agreement** — the no-adapt run lands within a committed
  relative error of the what-if prediction, and adaptive runs beat the
  predicted no-adapt makespan by a committed factor on
  slowdown-bearing cells.

Sweep artifacts are deterministic by construction — virtual-time
makespans only, no wall-clock values — so a serial sweep and a
``--jobs N`` sweep of the same grid are byte-identical.
"""

from __future__ import annotations

import itertools
import json
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.cluster.network import uniform_network
from repro.cluster.platform import HeterogeneousPlatform
from repro.cluster.processor import ProcessorSpec
from repro.errors import FaultPlanError
from repro.faults.adaptive import AdaptiveConfig
from repro.faults.plan import (
    FaultPlan,
    LinkDegrade,
    MessageDelay,
    RankCrash,
    RankSlowdown,
)
from repro.faults.policy import ResiliencePolicy

__all__ = [
    "AXES",
    "SWEEP_SCHEMA",
    "GATE_SCHEMA",
    "load_sweep_grid",
    "enumerate_cells",
    "plan_of_cell",
    "whatif_twin",
    "run_sweep",
    "write_sweep",
    "sweep_gate",
    "sweep_table",
    "main",
]

SWEEP_SCHEMA = "repro.faults.sweep/1"
GATE_SCHEMA = "repro.faults.sweep.gate/1"

#: Axis enumeration order — fixed, so cell order (and therefore the
#: artifact bytes) never depends on dict ordering in the grid file.
AXES: tuple[str, ...] = ("crash", "slowdown", "link_degrade", "delay")

#: Detector algorithms the adaptive driver supports.
_ALGORITHMS = ("atdca", "ufcls")

#: ``end_s`` values at/above this are treated as "whole run" and map to
#: an unbounded what-if window.
_OPEN_END_S = 1e8


# -- grid loading -------------------------------------------------------------

def load_sweep_grid(path: str | Path) -> dict[str, Any]:
    """Read + validate a sweep grid file."""
    p = Path(path)
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except OSError as exc:
        raise FaultPlanError(f"cannot read sweep grid {p}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"sweep grid {p} is not valid JSON: {exc}") from exc
    doc = validate_grid(doc)
    doc.setdefault("name", p.stem)
    return doc


def validate_grid(doc: Any) -> dict[str, Any]:
    """Check a sweep-grid document; returns it (with defaults filled)."""
    if not isinstance(doc, Mapping):
        raise FaultPlanError(f"sweep grid must be an object, got {type(doc).__name__}")
    doc = dict(doc)
    schema = doc.setdefault("schema", SWEEP_SCHEMA)
    if schema != SWEEP_SCHEMA:
        raise FaultPlanError(f"unknown sweep schema {schema!r} (expected {SWEEP_SCHEMA!r})")
    algorithms = doc.setdefault("algorithms", ["atdca"])
    for alg in algorithms:
        if alg not in _ALGORITHMS:
            raise FaultPlanError(
                f"sweep algorithm {alg!r} is not an adaptive-capable "
                f"detector {_ALGORITHMS}"
            )
    backends = doc.setdefault("backends", ["sim"])
    for backend in backends:
        if backend not in ("sim", "inproc"):
            raise FaultPlanError(f"unknown sweep backend {backend!r}")
    axes = doc.setdefault("axes", {})
    if not isinstance(axes, Mapping):
        raise FaultPlanError("sweep axes must be an object")
    for axis in axes:
        if axis not in AXES:
            raise FaultPlanError(f"unknown sweep axis {axis!r} (have {AXES})")
        options = axes[axis]
        if not isinstance(options, Sequence) or isinstance(options, str):
            raise FaultPlanError(f"axis {axis!r} must be a list of options")
        for opt in options:
            if opt is not None and not isinstance(opt, Mapping):
                raise FaultPlanError(
                    f"axis {axis!r} options must be objects or null"
                )
    if "policy" in doc and doc["policy"] is not None:
        # Parse for validation; plan_of_cell re-parses per cell.
        ResiliencePolicy.from_dict(doc["policy"])
    # Exercise plan construction for every cell up front so a bad
    # option fails fast, before any engine time is spent.
    for cell in enumerate_cells(doc):
        plan_of_cell(cell, doc)
    return doc


def _platform_of(doc: Mapping[str, Any]) -> HeterogeneousPlatform:
    spec = doc.get("platform") or {}
    cycle_times = spec.get("cycle_times", (0.002, 0.004, 0.008, 0.008))
    capacity = float(spec.get("capacity_ms_per_megabit", 10.0))
    procs = [
        ProcessorSpec(f"n{i}", float(w), memory_mb=4096, cache_kb=512)
        for i, w in enumerate(cycle_times)
    ]
    return HeterogeneousPlatform(
        str(spec.get("name", "sweep")),
        procs,
        uniform_network(len(procs), capacity),
    )


# -- enumeration --------------------------------------------------------------

def enumerate_cells(doc: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The grid's cells, in the committed deterministic order:
    algorithms (file order) × backends (file order) × the cross
    product of the four axes in :data:`AXES` order."""
    axes = doc.get("axes", {})
    options = [list(axes.get(axis) or [None]) for axis in AXES]
    cells = []
    for algorithm in doc.get("algorithms", ["atdca"]):
        for backend in doc.get("backends", ["sim"]):
            for combo in itertools.product(*options):
                cell = {"algorithm": algorithm, "backend": backend}
                cell.update(dict(zip(AXES, combo)))
                cells.append(cell)
    return cells


def _window(opt: Mapping[str, Any]) -> tuple[float, float]:
    return float(opt.get("start_s", 0.0)), float(opt.get("end_s", 1e9))


def plan_of_cell(
    cell: Mapping[str, Any], doc: Mapping[str, Any] | None = None
) -> FaultPlan | None:
    """The cell's fault plan (``None`` for the all-axes-inactive cell
    with no policy block)."""
    faults: list[Any] = []
    opt = cell.get("crash")
    if opt:
        faults.append(RankCrash(
            rank=int(opt["rank"]),
            at_virtual_s=opt.get("at_virtual_s"),
            at_op_index=opt.get("at_op_index"),
        ))
    opt = cell.get("slowdown")
    if opt:
        start_s, end_s = _window(opt)
        faults.append(RankSlowdown(
            rank=int(opt["rank"]), factor=float(opt["factor"]),
            start_s=start_s, end_s=end_s,
        ))
    opt = cell.get("link_degrade")
    if opt:
        start_s, end_s = _window(opt)
        faults.append(LinkDegrade(
            segment_a=str(opt["segment_a"]), segment_b=str(opt["segment_b"]),
            factor=float(opt["factor"]), start_s=start_s, end_s=end_s,
        ))
    opt = cell.get("delay")
    if opt:
        faults.append(MessageDelay(
            delay_s=float(opt["delay_s"]),
            src=opt.get("src"), dst=opt.get("dst"), tag=opt.get("tag"),
            count=opt.get("count"),
        ))
    policy = None
    if doc is not None and doc.get("policy") is not None:
        policy = ResiliencePolicy.from_dict(doc["policy"])
    if not faults and policy is None:
        return None
    return FaultPlan(tuple(faults), name=_cell_label(cell), policy=policy)


def _cell_label(cell: Mapping[str, Any]) -> str:
    parts = [str(cell.get("algorithm", "?")), str(cell.get("backend", "?"))]
    for axis in AXES:
        opt = cell.get(axis)
        parts.append(f"{axis}=off" if not opt else f"{axis}=on")
    return "/".join(parts)


def whatif_twin(plan: FaultPlan | None) -> "Any | None":
    """The plan's what-if twin, or ``None`` when it has no faithful
    model (crashes, delays and drops are not replayable timing
    perturbations)."""
    if plan is None:
        from repro.obs.whatif import WhatIfPlan

        return WhatIfPlan(())
    from repro.obs.whatif import LinkScale, RankComputeScale, WhatIfPlan

    perturbations: list[Any] = []
    for fault in plan:
        if fault.kind == "rank_slowdown":
            perturbations.append(RankComputeScale(
                rank=fault.rank, factor=fault.factor,
                start_s=fault.start_s,
                end_s=None if fault.end_s >= _OPEN_END_S else fault.end_s,
            ))
        elif fault.kind == "link_degrade":
            perturbations.append(LinkScale(
                segment_a=fault.segment_a, segment_b=fault.segment_b,
                factor=fault.factor, start_s=fault.start_s,
                end_s=None if fault.end_s >= _OPEN_END_S else fault.end_s,
            ))
        else:
            return None
    return WhatIfPlan(tuple(perturbations))


# -- execution ---------------------------------------------------------------

def _adaptive_of(doc: Mapping[str, Any]) -> AdaptiveConfig:
    spec = doc.get("adaptive")
    if spec is None or spec is True:
        return AdaptiveConfig()
    if isinstance(spec, Mapping):
        return AdaptiveConfig(**{str(k): v for k, v in spec.items()})
    raise FaultPlanError(f"sweep adaptive must be true or an object, got {spec!r}")


def _prepare_state(doc: Mapping[str, Any]) -> dict[str, Any]:
    """Shared per-process context: scene, platform, sequential
    references and a clean traced baseline per algorithm (the replay
    source for what-if predictions)."""
    from repro.core.atdca import atdca
    from repro.core.ufcls import ufcls
    from repro.faults.recovery import run_with_recovery
    from repro.hsi.scene import SceneConfig, make_wtc_scene
    from repro.obs import ObsSession
    from repro.obs.whatif import replay_ops_from_trace

    scene_spec = {str(k): v for k, v in (doc.get("scene") or {}).items()}
    scene = make_wtc_scene(SceneConfig(**scene_spec))
    platform = _platform_of(doc)
    params = dict(doc.get("params") or {})
    variant = str(doc.get("variant", "hetero"))
    sequential = {"atdca": atdca, "ufcls": ufcls}
    refs: dict[str, Any] = {}
    baselines: dict[str, Any] = {}
    for algorithm in doc.get("algorithms", ["atdca"]):
        n_targets = int(params.get("n_targets", 18))
        refs[algorithm] = sequential[algorithm](scene.image, n_targets)
        # The baseline must charge exactly what the no-adapt recovery
        # driver charges (checkpointing included), so the what-if
        # prediction targets the right program — a fault-free
        # run_with_recovery, traced and lifted into replay ops.
        obs = ObsSession.create()
        run_with_recovery(
            algorithm, scene.image, platform,
            params={"n_targets": n_targets}, variant=variant, obs=obs,
        )
        ops, _meta = replay_ops_from_trace(obs)
        baselines[algorithm] = ops
    return {
        "doc": dict(doc),
        "image": scene.image,
        "platform": platform,
        "params": {"n_targets": int(params.get("n_targets", 18))},
        "variant": variant,
        "refs": refs,
        "baselines": baselines,
    }


def _outputs_equal(output: Any, reference: Any) -> bool:
    return (
        output is not None
        and np.array_equal(output.flat_indices, reference.flat_indices)
        and np.array_equal(output.signatures, reference.signatures)
    )


def run_cell(state: Mapping[str, Any], cell: Mapping[str, Any]) -> dict[str, Any]:
    """Execute one sweep cell → a JSON-serializable record.

    The record carries virtual-time quantities only (inproc cells
    report correctness and trigger points, never wall seconds), so
    sweep artifacts are bytewise reproducible.
    """
    from repro.faults.recovery import run_with_recovery
    from repro.obs.whatif import replay

    doc = state["doc"]
    algorithm = cell["algorithm"]
    backend = cell["backend"]
    plan = plan_of_cell(cell, doc)
    overhead = float(doc.get("repartition_overhead_s", 0.0))
    record: dict[str, Any] = {
        "cell": {k: cell.get(k) for k in ("algorithm", "backend", *AXES)},
        "ok": False,
    }
    try:
        adaptive = run_with_recovery(
            algorithm, state["image"], state["platform"],
            params=state["params"], variant=state["variant"],
            backend=backend, plan=plan,
            repartition_overhead_s=overhead,
            adaptive=_adaptive_of(doc),
        )
    except Exception as exc:  # noqa: BLE001 - a cell failure is data
        record["error"] = f"{type(exc).__name__}: {exc}"
        return record
    reference = state["refs"][algorithm]
    record["ok"] = True
    record["result_equal"] = _outputs_equal(adaptive.output, reference)
    record["adaptations"] = [
        {"step": e.step, "rank": e.rank, "factor": e.factor}
        for e in adaptive.adaptations
    ]
    record["crashed_ranks"] = list(adaptive.crashed_ranks)
    if backend != "sim":
        return record
    # Crash-cell makespans are excluded from artifacts: abort-based
    # crash *detection* observes peer clocks wherever the OS scheduler
    # left them, so the post-crash timeline is schedule-dependent even
    # in virtual time.  (Adaptive repartitions are coordinated exits —
    # every rank leaves at the same virtual boundary — so slowdown
    # cells stay fully deterministic.)
    crashy = bool(cell.get("crash")) or bool(record["crashed_ranks"])
    if not crashy:
        record["makespan"] = adaptive.makespan
    try:
        noadapt = run_with_recovery(
            algorithm, state["image"], state["platform"],
            params=state["params"], variant=state["variant"],
            backend="sim", plan=plan, repartition_overhead_s=overhead,
        )
    except Exception as exc:  # noqa: BLE001
        record["ok"] = False
        record["error"] = f"no-adapt: {type(exc).__name__}: {exc}"
        return record
    record["result_equal"] = (
        record["result_equal"] and _outputs_equal(noadapt.output, reference)
    )
    if crashy:
        return record
    record["makespan_noadapt"] = noadapt.makespan
    twin = whatif_twin(plan)
    if twin is not None:
        predicted = replay(
            state["baselines"][algorithm], state["platform"], plan=twin
        ).makespan
        record["predicted_noadapt"] = predicted
        record["prediction_rel_error"] = (
            abs(predicted - noadapt.makespan) / noadapt.makespan
            if noadapt.makespan else 0.0
        )
        record["ratio_vs_predicted"] = (
            adaptive.makespan / predicted if predicted else None
        )
    return record


#: Per-worker state for the process-pool path (set once by the
#: initializer; one copy per pool process).
_POOL_STATE: dict[str, Any] | None = None


def _sweep_pool_init(doc: dict[str, Any]) -> None:
    global _POOL_STATE
    _POOL_STATE = _prepare_state(doc)


def _sweep_pool_cell(cell: dict[str, Any]) -> dict[str, Any]:
    assert _POOL_STATE is not None
    return run_cell(_POOL_STATE, cell)


def run_sweep(
    doc: Mapping[str, Any], jobs: int | None = None
) -> dict[str, Any]:
    """Run every cell of a validated grid → the sweep result document.

    Cells are pure functions of the grid, so ``jobs > 1`` fans them
    out over a process pool and merges results back in enumeration
    order — any ``jobs`` value produces byte-identical artifacts.
    """
    doc = validate_grid(doc)
    cells = enumerate_cells(doc)
    records: list[dict[str, Any]]
    if jobs is not None and jobs > 1 and len(cells) > 1:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(cells)),
            initializer=_sweep_pool_init,
            initargs=(dict(doc),),
        ) as pool:
            # map() preserves cell order regardless of completion order.
            records = list(pool.map(_sweep_pool_cell, cells))
    else:
        state = _prepare_state(doc)
        records = [run_cell(state, cell) for cell in cells]
    n_adapted = sum(1 for r in records if r.get("adaptations"))
    return {
        "schema": SWEEP_SCHEMA,
        "name": str(doc.get("name", "sweep")),
        "grid": dict(doc),
        "cells": records,
        "summary": {
            "n_cells": len(records),
            "n_ok": sum(1 for r in records if r.get("ok")),
            "n_result_equal": sum(1 for r in records if r.get("result_equal")),
            "n_adapted": n_adapted,
        },
    }


def write_sweep(doc: Mapping[str, Any], path: str | Path) -> Path:
    """Write a sweep result deterministically (sorted keys, compact
    separators, trailing newline) so artifact diffs are meaningful."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return out


# -- gating -------------------------------------------------------------------

def sweep_gate(
    result: Mapping[str, Any], thresholds: Mapping[str, Any]
) -> list[str]:
    """Check a sweep result against committed thresholds.

    Returns the list of violations (empty = gate passes):

    * every cell ran and matched the sequential reference;
    * cells with a what-if twin: the no-adapt makespan agrees with the
      prediction within ``max_prediction_rel_error``;
    * adapted slowdown cells (no crash): the adaptive makespan is at
      most ``max_adaptive_over_predicted`` × the predicted no-adapt
      makespan — the committed recovery-beats-model factor;
    * at least ``min_adapted_cells`` cells actually adapted.
    """
    if thresholds.get("schema", GATE_SCHEMA) != GATE_SCHEMA:
        raise FaultPlanError(
            f"unknown gate schema {thresholds.get('schema')!r}"
        )
    max_err = float(thresholds.get("max_prediction_rel_error", 1e-6))
    max_ratio = float(thresholds.get("max_adaptive_over_predicted", 1.0))
    min_adapted = int(thresholds.get("min_adapted_cells", 1))
    violations: list[str] = []
    n_adapted = 0
    for record in result.get("cells", []):
        label = _cell_label(record.get("cell", {}))
        if not record.get("ok"):
            violations.append(
                f"{label}: failed ({record.get('error', 'unknown error')})"
            )
            continue
        if not record.get("result_equal"):
            violations.append(
                f"{label}: output differs from the sequential reference"
            )
        if record.get("adaptations"):
            n_adapted += 1
        err = record.get("prediction_rel_error")
        if err is not None and err > max_err:
            violations.append(
                f"{label}: no-adapt makespan is {err:.3g} rel. from the "
                f"what-if prediction (max {max_err:.3g})"
            )
        cell = record.get("cell", {})
        ratio = record.get("ratio_vs_predicted")
        if (
            cell.get("slowdown")
            and not cell.get("crash")
            and record.get("adaptations")
            and ratio is not None
            and ratio > max_ratio
        ):
            violations.append(
                f"{label}: adaptive makespan is {ratio:.3f}x the predicted "
                f"no-adapt makespan (max {max_ratio:.3f}x)"
            )
    if n_adapted < min_adapted:
        violations.append(
            f"only {n_adapted} cells adapted (min {min_adapted})"
        )
    return violations


def sweep_table(result: Mapping[str, Any]) -> str:
    """A human-readable per-cell summary of a sweep result."""
    lines = [
        f"chaos sweep: {result.get('name', '?')} "
        f"({result.get('summary', {}).get('n_cells', 0)} cells)",
        f"{'cell':<44} {'equal':>5} {'adapt':>5} "
        f"{'makespan':>10} {'predicted':>10} {'ratio':>7}",
    ]
    def fmt(value: Any, width: int, spec: str) -> str:
        if value is None:
            return f"{'-':>{width}}"
        return f"{value:>{width}{spec}}"

    for record in result.get("cells", []):
        label = _cell_label(record.get("cell", {}))
        equal = "yes" if record.get("result_equal") else "NO"
        if not record.get("ok"):
            equal = "ERR"
        lines.append(
            f"{label:<44} {equal:>5} "
            f"{len(record.get('adaptations', [])):>5} "
            + fmt(record.get("makespan"), 10, ".5f")
            + fmt(record.get("predicted_noadapt"), 11, ".5f")
            + fmt(record.get("ratio_vs_predicted"), 8, ".3f")
        )
    return "\n".join(lines)


# -- CLI ----------------------------------------------------------------------

def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.faults sweep`` — run or gate a chaos sweep."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.faults sweep",
        description="Chaos-sweep fault grids through adaptive recovery.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run_p = sub.add_parser("run", help="execute a sweep grid")
    run_p.add_argument("grid", help="sweep grid JSON file")
    run_p.add_argument("--out", default=None, help="result JSON path")
    run_p.add_argument("--jobs", type=int, default=None,
                       help="fan cells over N worker processes")
    run_p.add_argument("--gate", default=None,
                       help="also gate against this thresholds JSON")
    gate_p = sub.add_parser("gate", help="gate an existing sweep result")
    gate_p.add_argument("result", help="sweep result JSON file")
    gate_p.add_argument("thresholds", help="gate thresholds JSON file")
    cells_p = sub.add_parser("cells", help="list a grid's cells")
    cells_p.add_argument("grid", help="sweep grid JSON file")
    args = parser.parse_args(argv)

    try:
        return _dispatch(args)
    except FaultPlanError as exc:
        print(f"invalid sweep input: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot read {exc.filename}: {exc.strerror}", file=sys.stderr)
        return 1


def _dispatch(args: Any) -> int:
    if args.command == "cells":
        doc = load_sweep_grid(args.grid)
        for cell in enumerate_cells(doc):
            print(_cell_label(cell))
        return 0
    if args.command == "gate":
        result = json.loads(Path(args.result).read_text(encoding="utf-8"))
        thresholds = json.loads(
            Path(args.thresholds).read_text(encoding="utf-8")
        )
        violations = sweep_gate(result, thresholds)
        for violation in violations:
            print(f"GATE: {violation}", file=sys.stderr)
        print("gate: " + ("FAIL" if violations else "PASS"))
        return 1 if violations else 0
    doc = load_sweep_grid(args.grid)
    result = run_sweep(doc, jobs=args.jobs)
    print(sweep_table(result))
    if args.out:
        path = write_sweep(result, args.out)
        print(f"wrote {path}")
    if args.gate:
        thresholds = json.loads(Path(args.gate).read_text(encoding="utf-8"))
        violations = sweep_gate(result, thresholds)
        for violation in violations:
            print(f"GATE: {violation}", file=sys.stderr)
        print("gate: " + ("FAIL" if violations else "PASS"))
        return 1 if violations else 0
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
