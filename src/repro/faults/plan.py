"""Declarative, seed-free fault plans.

A :class:`FaultPlan` is an ordered tuple of fault specifications that
deterministically describe *what goes wrong when* — no random number
generator is involved, so the same plan file produces the same fault
sequence on every run.  Plans are interpreted natively by the
virtual-time engine and by the :class:`~repro.faults.FaultyCommunicator`
wrapper on the wall-clock backend:

* :class:`RankCrash` — the rank raises
  :class:`~repro.errors.RankFailedError` at its ``at_op_index``-th
  operation (op counting is identical on both backends) or at the
  first operation at/after ``at_virtual_s`` on its clock;
* :class:`RankSlowdown` — computation charged inside
  ``[start_s, end_s)`` is dilated by ``factor`` (virtual-time engine;
  the wall-clock backend meters the windows but does not stall);
* :class:`LinkDegrade` — transfers crossing the named segment pair
  have their *capacity* term scaled by ``factor`` inside the window
  (message latency is unaffected);
* :class:`MessageDelay` — matching sends stall ``delay_s`` before
  entering the network;
* :class:`MessageDrop` — the first ``count`` matching sends raise
  :class:`~repro.errors.TransientNetworkError` (pair with
  :func:`repro.faults.send_with_retry`).

Plans serialize to/from JSON (``{"faults": [{"kind": ...}, ...]}``)
via :func:`load_fault_plan` / :meth:`FaultPlan.to_json`.  A plan may
additionally embed a ``"policy"`` block — a
:class:`~repro.faults.policy.ResiliencePolicy` configuring retry
budgets and per-op deadlines for the detection layer — which older
plan files simply omit (parsing is backward compatible).
"""

from __future__ import annotations

import dataclasses
import json
import math
import sys
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import FaultPlanError
from repro.faults.policy import ResiliencePolicy

__all__ = [
    "RankCrash",
    "RankSlowdown",
    "LinkDegrade",
    "MessageDelay",
    "MessageDrop",
    "FaultPlan",
    "load_fault_plan",
    "main",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultPlanError(message)


@dataclasses.dataclass(frozen=True)
class RankCrash:
    """Kill one rank at a deterministic point of its own program.

    Exactly one trigger must be given: ``at_op_index`` (1-based count
    of the rank's compute/send/recv operations — identical on both
    backends) or ``at_virtual_s`` (first operation at/after that time
    on the rank's clock: virtual time on the engine, nominal compute
    time on the wall-clock backend).
    """

    rank: int
    at_virtual_s: float | None = None
    at_op_index: int | None = None

    kind = "rank_crash"

    def validate(self) -> None:
        _require(self.rank >= 0, f"rank_crash: rank must be >= 0, got {self.rank}")
        has_time = self.at_virtual_s is not None
        has_op = self.at_op_index is not None
        _require(
            has_time != has_op,
            "rank_crash: exactly one of at_virtual_s / at_op_index required",
        )
        if has_time:
            _require(
                math.isfinite(self.at_virtual_s) and self.at_virtual_s >= 0,
                f"rank_crash: at_virtual_s must be finite and >= 0, "
                f"got {self.at_virtual_s}",
            )
        if has_op:
            _require(
                self.at_op_index >= 1,
                f"rank_crash: at_op_index must be >= 1, got {self.at_op_index}",
            )


@dataclasses.dataclass(frozen=True)
class RankSlowdown:
    """Dilate one rank's computation by ``factor`` inside a window."""

    rank: int
    factor: float
    start_s: float = 0.0
    end_s: float = 0.0

    kind = "rank_slowdown"

    def validate(self) -> None:
        _require(self.rank >= 0, f"rank_slowdown: rank must be >= 0, got {self.rank}")
        _require(
            math.isfinite(self.factor) and self.factor > 0,
            f"rank_slowdown: factor must be positive, got {self.factor}",
        )
        _require(
            math.isfinite(self.start_s) and math.isfinite(self.end_s)
            and 0 <= self.start_s < self.end_s,
            f"rank_slowdown: need a finite window 0 <= start_s < end_s, "
            f"got [{self.start_s}, {self.end_s})",
        )


@dataclasses.dataclass(frozen=True)
class LinkDegrade:
    """Scale the capacity term of a serial segment pair (or a switched
    segment's internal medium when ``segment_a == segment_b``)."""

    segment_a: str
    segment_b: str
    factor: float
    start_s: float = 0.0
    end_s: float = 0.0

    kind = "link_degrade"

    def validate(self) -> None:
        _require(
            bool(self.segment_a) and bool(self.segment_b),
            "link_degrade: both segment names are required",
        )
        _require(
            math.isfinite(self.factor) and self.factor > 0,
            f"link_degrade: factor must be positive, got {self.factor}",
        )
        _require(
            math.isfinite(self.start_s) and math.isfinite(self.end_s)
            and 0 <= self.start_s < self.end_s,
            f"link_degrade: need a finite window 0 <= start_s < end_s, "
            f"got [{self.start_s}, {self.end_s})",
        )

    @property
    def pair(self) -> tuple[str, str]:
        a, b = self.segment_a, self.segment_b
        return (a, b) if a <= b else (b, a)


@dataclasses.dataclass(frozen=True)
class MessageDelay:
    """Stall matching sends ``delay_s`` before they enter the network.

    ``src``/``dst``/``tag`` are match predicates (``None`` = any);
    ``count`` limits how many sends are delayed (``None`` = all).
    Wildcard predicates with a finite ``count`` consume in global
    thread-arrival order, so pin ``src`` for deterministic plans.
    """

    delay_s: float
    src: int | None = None
    dst: int | None = None
    tag: int | None = None
    count: int | None = None

    kind = "message_delay"

    def validate(self) -> None:
        _require(
            math.isfinite(self.delay_s) and self.delay_s > 0,
            f"message_delay: delay_s must be positive, got {self.delay_s}",
        )
        _require(
            self.count is None or self.count >= 1,
            f"message_delay: count must be >= 1 or None, got {self.count}",
        )

    def matches(self, src: int, dst: int, tag: int) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.tag is None or self.tag == tag)
        )


@dataclasses.dataclass(frozen=True)
class MessageDrop:
    """Lose the first ``count`` matching sends in transit.

    The sender observes :class:`~repro.errors.TransientNetworkError`;
    wrap sends in :func:`repro.faults.send_with_retry` to survive.
    """

    src: int | None = None
    dst: int | None = None
    tag: int | None = None
    count: int = 1

    kind = "message_drop"

    def validate(self) -> None:
        _require(
            self.count >= 1, f"message_drop: count must be >= 1, got {self.count}"
        )

    def matches(self, src: int, dst: int, tag: int) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.tag is None or self.tag == tag)
        )


_FAULT_KINDS = {
    cls.kind: cls
    for cls in (RankCrash, RankSlowdown, LinkDegrade, MessageDelay, MessageDrop)
}

Fault = RankCrash | RankSlowdown | LinkDegrade | MessageDelay | MessageDrop


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated, ordered set of fault specifications.

    ``policy`` optionally attaches the resilience policy (retry +
    deadline budgets) that detection helpers should apply while the
    plan is active; ``None`` keeps the library defaults.
    """

    faults: tuple[Fault, ...] = ()
    name: str = ""
    policy: ResiliencePolicy | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if type(fault) not in _FAULT_KINDS.values():
                raise FaultPlanError(
                    f"unknown fault object {fault!r} in plan {self.name!r}"
                )
            fault.validate()

    def __iter__(self) -> Iterable[Fault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def of_kind(self, kind: str) -> tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind == kind)

    @property
    def max_rank(self) -> int:
        """Highest rank referenced anywhere in the plan (-1 if none)."""
        ranks = [-1]
        for fault in self.faults:
            for field in ("rank", "src", "dst"):
                value = getattr(fault, field, None)
                if value is not None:
                    ranks.append(int(value))
        return max(ranks)

    def check_platform(self, n_ranks: int, master_rank: int = 0) -> None:
        """Raise :class:`FaultPlanError` if the plan cannot apply."""
        if self.max_rank >= n_ranks:
            raise FaultPlanError(
                f"plan {self.name!r} references rank {self.max_rank} but the "
                f"platform has only {n_ranks} ranks"
            )
        for crash in self.of_kind("rank_crash"):
            if crash.rank == master_rank:
                raise FaultPlanError(
                    f"plan {self.name!r} crashes the master rank "
                    f"{master_rank} — unrecoverable by design"
                )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"faults": []}
        if self.name:
            out["name"] = self.name
        if self.policy is not None:
            out["policy"] = self.policy.to_dict()
        for fault in self.faults:
            entry = {"kind": fault.kind}
            for field in dataclasses.fields(fault):
                value = getattr(fault, field.name)
                if value is not None:
                    entry[field.name] = value
            out["faults"].append(entry)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write_json(self, path: str | Path) -> Path:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json(), encoding="utf-8")
        return out

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(doc, Mapping) or "faults" not in doc:
            raise FaultPlanError('fault plan document needs a "faults" list')
        faults = []
        for i, entry in enumerate(doc["faults"]):
            if not isinstance(entry, Mapping) or "kind" not in entry:
                raise FaultPlanError(f'fault #{i} needs a "kind" field')
            kind = entry["kind"]
            fault_cls = _FAULT_KINDS.get(kind)
            if fault_cls is None:
                raise FaultPlanError(
                    f"fault #{i}: unknown kind {kind!r} "
                    f"(expected one of {sorted(_FAULT_KINDS)})"
                )
            fields = {f.name for f in dataclasses.fields(fault_cls)}
            kwargs = {k: v for k, v in entry.items() if k != "kind"}
            unknown = set(kwargs) - fields
            if unknown:
                raise FaultPlanError(
                    f"fault #{i} ({kind}): unknown fields {sorted(unknown)}"
                )
            try:
                faults.append(fault_cls(**kwargs))
            except TypeError as exc:
                raise FaultPlanError(f"fault #{i} ({kind}): {exc}") from exc
        policy = None
        if doc.get("policy") is not None:
            policy = ResiliencePolicy.from_dict(doc["policy"])
        return cls(
            faults=tuple(faults),
            name=str(doc.get("name", "")),
            policy=policy,
        )


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Read and validate a JSON fault plan file."""
    source = Path(path)
    try:
        doc = json.loads(source.read_text(encoding="utf-8"))
    except OSError as exc:
        raise FaultPlanError(f"cannot read fault plan {source}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"fault plan {source} is not valid JSON: {exc}") from exc
    plan = FaultPlan.from_dict(doc)
    if not plan.name:
        plan = dataclasses.replace(plan, name=source.stem)
    return plan


def describe_plan(plan: FaultPlan) -> str:
    """One-screen human-readable plan summary."""
    lines = [f"fault plan {plan.name or '(unnamed)'}: {len(plan)} faults"]
    for fault in plan:
        fields = ", ".join(
            f"{f.name}={getattr(fault, f.name)}"
            for f in dataclasses.fields(fault)
            if getattr(fault, f.name) is not None
        )
        lines.append(f"  {fault.kind}: {fields}")
    if plan.policy is not None:
        from repro.faults.policy import describe_policy

        lines.append("  " + describe_policy(plan.policy).replace("\n", "\n  "))
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.faults plan <validate|show> FILE``"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults plan",
        description="Inspect and validate JSON fault plans.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_val = sub.add_parser("validate", help="exit 0 iff the plan parses")
    p_val.add_argument("file")
    p_val.add_argument("--ranks", type=int, default=None,
                       help="also check the plan against a platform of "
                            "this many ranks (master rank 0)")
    p_show = sub.add_parser("show", help="parse a plan and print it")
    p_show.add_argument("file")
    args = parser.parse_args(argv)

    try:
        plan = load_fault_plan(args.file)
        if args.command == "validate" and args.ranks is not None:
            plan.check_platform(args.ranks)
    except FaultPlanError as exc:
        print(f"invalid fault plan: {exc}", file=sys.stderr)
        return 1
    if args.command == "validate":
        print(f"ok: {describe_plan(plan)}")
    else:
        print(describe_plan(plan))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
