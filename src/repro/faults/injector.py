"""Fault-plan interpreter shared by both MPI backends.

The :class:`FaultInjector` is the single stateful object that turns a
declarative :class:`~repro.faults.plan.FaultPlan` into concrete
failures.  The virtual-time engine calls its hooks natively from
``RankContext.compute/send/recv`` and ``SimulationEngine._on_match``;
the wall-clock backend interposes the same hooks via
:class:`FaultyCommunicator`, which wraps each rank's
``InprocContext``.  Both paths share the per-rank *operation counters*
(compute/send/recv, counted in program order), so ``at_op_index``
crash triggers fire at exactly the same operation on both clocks.

Fault state is keyed by **original** rank ids.  When
checkpoint–restart recovery re-runs a program on a survivor subset,
:meth:`FaultInjector.attach` is called again with a ``rank_map``
translating the new (dense) rank numbering back to the original one —
so already-fired crashes stay fired, drop/delay budgets keep their
remaining counts, and windows keep their absolute times.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import FaultPlanError, RankFailedError, TransientNetworkError
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.platform import HeterogeneousPlatform
    from repro.obs import ObsSession

__all__ = ["FaultInjector", "FaultyCommunicator"]

#: Cap on how long the wall-clock backend actually sleeps for an
#: injected MessageDelay — delays are *modelled* (the nominal clock
#: advances by the full delay) but the test suite shouldn't stall.
_MAX_REAL_SLEEP_S = 0.05


class FaultInjector:
    """Deterministic interpreter for one :class:`FaultPlan`.

    One injector instance spans a whole (possibly multi-attempt)
    fault-tolerant run; call :meth:`attach` before each attempt to
    bind the current platform/rank numbering and observability
    session.  All hooks are thread-safe and take times on the caller's
    clock (virtual seconds on the engine, nominal compute seconds on
    the wall-clock backend).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        # All persistent state below is keyed by ORIGINAL rank ids.
        self._op_counts: dict[int, int] = {}
        self._fired_crashes: set[int] = set()
        # Remaining drop/delay budget per plan index (None = unlimited).
        self._remaining: dict[int, int | None] = {}
        for i, fault in enumerate(plan):
            if fault.kind in ("message_drop", "message_delay"):
                self._remaining[i] = fault.count
        self._platform: "HeterogeneousPlatform | None" = None
        self._obs: "ObsSession | None" = None
        self._rank_map: tuple[int, ...] | None = None
        self._windows_emitted = False

    # -- binding -------------------------------------------------------------
    def attach(
        self,
        platform: "HeterogeneousPlatform | None" = None,
        obs: "ObsSession | None" = None,
        rank_map: Sequence[int] | None = None,
    ) -> "FaultInjector":
        """Bind the injector to the platform/rank numbering of the next
        attempt.

        Args:
            platform: platform of the upcoming run (segment names are
                used to resolve :class:`LinkDegrade` faults).
            obs: observability session for fault spans/counters.
            rank_map: ``rank_map[current_rank] == original_rank``; omit
                for the identity mapping of a first attempt.
        """
        with self._lock:
            self._platform = platform
            self._obs = obs
            self._rank_map = tuple(rank_map) if rank_map is not None else None
            if platform is not None and self._rank_map is None:
                # The plan speaks original rank ids; validate it against
                # the full platform on the first (identity) attach only.
                self.plan.check_platform(
                    platform.size, master_rank=platform.master_rank
                )
            if obs is not None and not self._windows_emitted:
                self._emit_windows(obs)
                self._windows_emitted = True
        return self

    def _original(self, rank: int) -> int:
        if self._rank_map is None:
            return rank
        return self._rank_map[rank]

    def _emit_windows(self, obs: "ObsSession") -> None:
        """Record window faults as spans once, so traces show when the
        plan degrades which resource (category ``fault``)."""
        for fault in self.plan:
            if fault.kind == "rank_slowdown":
                obs.tracer.add_span(
                    "fault.slowdown", fault.rank, fault.start_s, fault.end_s,
                    category="fault", factor=float(fault.factor),
                )
            elif fault.kind == "link_degrade":
                obs.tracer.add_span(
                    "fault.link_degrade", 0, fault.start_s, fault.end_s,
                    category="fault", factor=float(fault.factor),
                    link="|".join(fault.pair),
                )

    # -- hooks (engine + FaultyCommunicator) ---------------------------------
    def before_op(self, rank: int, op: str, now: float) -> None:
        """Count one operation of ``rank`` and fire a due crash.

        Called before every compute/send/recv with the rank's current
        clock.  Raises :class:`~repro.errors.RankFailedError` with
        ``injected=True`` when a :class:`RankCrash` trigger is met.
        """
        with self._lock:
            orig = self._original(rank)
            count = self._op_counts.get(orig, 0) + 1
            self._op_counts[orig] = count
            for crash in self.plan.of_kind("rank_crash"):
                if crash.rank != orig or crash.rank in self._fired_crashes:
                    continue
                due = (
                    crash.at_op_index is not None and count >= crash.at_op_index
                ) or (
                    crash.at_virtual_s is not None and now >= crash.at_virtual_s
                )
                if not due:
                    continue
                self._fired_crashes.add(crash.rank)
                if self._obs is not None:
                    self._obs.metrics.counter(
                        "fault.injected", kind="rank_crash", rank=rank
                    ).inc()
                    self._obs.tracer.add_span(
                        "fault.crash", rank, now, now, category="fault",
                        op=op, original_rank=orig,
                    )
                raise RankFailedError(
                    rank,
                    f"rank {rank} (original rank {orig}) crashed by fault "
                    f"plan {self.plan.name!r} at op #{count} ({op}, "
                    f"t={now:.6f})",
                    injected=True,
                )

    def compute_factor(self, rank: int, start_s: float) -> float:
        """Dilation factor for computation starting at ``start_s``."""
        factor = 1.0
        with self._lock:
            orig = self._original(rank)
            for slow in self.plan.of_kind("rank_slowdown"):
                if slow.rank == orig and slow.start_s <= start_s < slow.end_s:
                    factor *= slow.factor
        return factor

    def transfer_factor(self, src: int, dst: int, start_s: float) -> float:
        """Capacity dilation for a transfer starting at ``start_s``.

        Resolved against the *current* platform's segment names (they
        are preserved across survivor subsets); scales only the
        capacity term — latency is unaffected.
        """
        platform = self._platform
        if platform is None:
            return 1.0
        network = platform.network
        a, b = network.segment_of(src), network.segment_of(dst)
        pair = (a, b) if a <= b else (b, a)
        factor = 1.0
        with self._lock:
            for deg in self.plan.of_kind("link_degrade"):
                if deg.pair == pair and deg.start_s <= start_s < deg.end_s:
                    factor *= deg.factor
        return factor

    def on_send(self, rank: int, dest: int, tag: int, now: float) -> float:
        """Apply drop/delay faults to one send attempt.

        Returns the injected delay in seconds (0.0 when none applies);
        raises :class:`~repro.errors.TransientNetworkError` when a
        :class:`MessageDrop` budget consumes this message.  Budgets are
        consumed under the injector lock in the caller's arrival order,
        so pin ``src`` in the plan for deterministic runs.
        """
        with self._lock:
            src = self._original(rank)
            dst = self._original(dest)
            for i, fault in enumerate(self.plan):
                if fault.kind != "message_drop":
                    continue
                remaining = self._remaining.get(i, 0)
                if not remaining or not fault.matches(src, dst, tag):
                    continue
                self._remaining[i] = remaining - 1
                if self._obs is not None:
                    self._obs.metrics.counter(
                        "fault.injected", kind="message_drop", rank=rank
                    ).inc()
                    self._obs.tracer.add_span(
                        "fault.drop", rank, now, now, category="fault",
                        peer=dest, tag=tag,
                    )
                raise TransientNetworkError(
                    f"rank {rank}: message to rank {dest} (tag {tag}) lost "
                    f"in transit (fault plan {self.plan.name!r})"
                )
            delay = 0.0
            for i, fault in enumerate(self.plan):
                if fault.kind != "message_delay":
                    continue
                remaining = self._remaining.get(i)
                if remaining == 0 or not fault.matches(src, dst, tag):
                    continue
                if remaining is not None:
                    self._remaining[i] = remaining - 1
                delay += fault.delay_s
            if delay > 0 and self._obs is not None:
                self._obs.metrics.counter(
                    "fault.injected", kind="message_delay", rank=rank
                ).inc()
                self._obs.tracer.add_span(
                    "fault.delay", rank, now, now + delay, category="fault",
                    peer=dest, tag=tag,
                )
        return delay

    # -- introspection --------------------------------------------------------
    def fired_crashes(self) -> frozenset[int]:
        """Original ranks whose planned crashes have fired so far."""
        with self._lock:
            return frozenset(self._fired_crashes)

    @property
    def policy(self) -> Any:
        """The plan's embedded resilience policy (``None`` if absent).

        Exposed so detection helpers can discover deadlines/retry
        budgets from whatever context wraps this injector (see
        :func:`repro.faults.detect.policy_of`).
        """
        return getattr(self.plan, "policy", None)


class FaultyCommunicator:
    """Interposing wrapper applying a fault plan on the inproc backend.

    Wraps an :class:`repro.mpi.inproc.InprocContext` (or any
    ``MessageContext``) and drives the shared :class:`FaultInjector`
    hooks so the *same plan file* produces the same fault sequence as
    the virtual-time engine: op counting is identical, and time-based
    triggers/windows are evaluated against a **nominal clock** that
    accumulates the analytic compute cost (mflops × the rank's
    cycle-time from the attached platform) — wall time is never
    consulted, keeping injection deterministic.
    """

    def __init__(self, ctx: Any, injector: FaultInjector) -> None:
        self.context = ctx
        self.injector = injector
        self._nominal_s = 0.0

    # Delegate the MessageContext surface --------------------------------
    @property
    def rank(self) -> int:
        return self.context.rank

    @property
    def size(self) -> int:
        return self.context.size

    @property
    def master_rank(self) -> int:
        return self.context.master_rank

    @property
    def is_master(self) -> bool:
        return self.context.rank == self.context.master_rank

    @property
    def nominal_now(self) -> float:
        """Accumulated nominal compute seconds (the trigger clock)."""
        return self._nominal_s

    def __getattr__(self, name: str) -> Any:
        return getattr(self.context, name)

    # Hooked operations ---------------------------------------------------
    def _nominal_seconds(self, mflops: float) -> float:
        platform = self.injector._platform
        if platform is None:
            return 0.0
        return platform.processor(self.rank).compute_seconds(mflops)

    def compute(self, mflops: float, sequential: bool = False) -> float:
        self.injector.before_op(self.rank, "compute", self._nominal_s)
        dt = self._nominal_seconds(mflops)
        dt *= self.injector.compute_factor(self.rank, self._nominal_s)
        self._nominal_s += dt
        return self.context.compute(mflops, sequential=sequential)

    def charge_seconds(self, seconds: float, phase: Any = None) -> None:
        self._nominal_s += max(0.0, float(seconds))
        self.context.charge_seconds(seconds, phase)

    def send(
        self, dest: int, payload: Any, tag: int = 0, **kwargs: Any
    ) -> None:
        self.injector.before_op(self.rank, "send", self._nominal_s)
        delay = self.injector.on_send(self.rank, dest, tag, self._nominal_s)
        if delay > 0:
            self._nominal_s += delay
            time.sleep(min(delay, _MAX_REAL_SLEEP_S))
        self.context.send(dest, payload, tag, **kwargs)

    def recv(self, source: int, tag: int = -1, **kwargs: Any) -> Any:
        self.injector.before_op(self.rank, "recv", self._nominal_s)
        return self.context.recv(source, tag, **kwargs)


def injector_for(plan: FaultPlan | FaultInjector | None) -> FaultInjector | None:
    """Accept either a plan or a ready injector (or None)."""
    if plan is None:
        return None
    if isinstance(plan, FaultInjector):
        return plan
    if isinstance(plan, FaultPlan):
        return FaultInjector(plan)
    raise FaultPlanError(
        f"expected FaultPlan or FaultInjector, got {type(plan).__name__}"
    )
