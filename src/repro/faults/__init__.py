"""Deterministic fault injection + fault tolerance (``repro.faults``).

Three layers, shared by both MPI backends:

1. **Plans** (:mod:`repro.faults.plan`) — declarative, seed-free fault
   schedules (:class:`RankCrash`, :class:`RankSlowdown`,
   :class:`LinkDegrade`, :class:`MessageDelay`, :class:`MessageDrop`)
   that serialize to JSON; the same plan file produces the same fault
   sequence on the virtual-time engine and the wall-clock backend.
2. **Detection** (:mod:`repro.faults.detect`) — per-operation
   deadlines, :func:`send_with_retry` with exponential backoff for
   transient losses, and a router-derived :class:`LivenessView`.
3. **Recovery** (:mod:`repro.faults.recovery`) —
   :func:`run_with_recovery` re-runs WEA over the survivors after a
   confirmed rank loss and resumes iterative algorithms from in-memory
   master checkpoints (:class:`CheckpointStore`).

The interpreter tying plans to execution is
:class:`~repro.faults.injector.FaultInjector`; the wall-clock backend
interposes it via :class:`~repro.faults.injector.FaultyCommunicator`.
"""

from repro.faults.detect import (
    DEFAULT_RETRY_POLICY,
    LivenessView,
    RetryPolicy,
    liveness_of,
    recv_with_timeout,
    send_with_retry,
)
from repro.faults.injector import FaultInjector, FaultyCommunicator, injector_for
from repro.faults.plan import (
    FaultPlan,
    LinkDegrade,
    MessageDelay,
    MessageDrop,
    RankCrash,
    RankSlowdown,
    load_fault_plan,
)
from repro.faults.recovery import (
    CheckpointStore,
    RecoveredRun,
    RecoveryAttempt,
    run_with_recovery,
)

__all__ = [
    # plans
    "FaultPlan",
    "RankCrash",
    "RankSlowdown",
    "LinkDegrade",
    "MessageDelay",
    "MessageDrop",
    "load_fault_plan",
    # injection
    "FaultInjector",
    "FaultyCommunicator",
    "injector_for",
    # detection
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "send_with_retry",
    "recv_with_timeout",
    "LivenessView",
    "liveness_of",
    # recovery
    "CheckpointStore",
    "RecoveryAttempt",
    "RecoveredRun",
    "run_with_recovery",
]
