"""Deterministic fault injection + fault tolerance (``repro.faults``).

Layers, shared by both MPI backends:

1. **Plans** (:mod:`repro.faults.plan`) — declarative, seed-free fault
   schedules (:class:`RankCrash`, :class:`RankSlowdown`,
   :class:`LinkDegrade`, :class:`MessageDelay`, :class:`MessageDrop`)
   that serialize to JSON; the same plan file produces the same fault
   sequence on the virtual-time engine and the wall-clock backend.
2. **Policies** (:mod:`repro.faults.policy`) — declarative
   :class:`RetryPolicy`/:class:`DeadlinePolicy` resilience settings,
   embeddable in a plan's ``policy`` block.
3. **Detection** (:mod:`repro.faults.detect`) — per-operation
   deadlines, :func:`send_with_retry` with exponential backoff for
   transient losses, and a router-derived :class:`LivenessView`.
4. **Recovery** (:mod:`repro.faults.recovery`) —
   :func:`run_with_recovery` re-runs WEA over the survivors after a
   confirmed rank loss and resumes iterative algorithms from in-memory
   master checkpoints (:class:`CheckpointStore`).
5. **Adaptation** (:mod:`repro.faults.adaptive`) — the same
   repartition seam driven by the online straggler detector:
   slowed-but-alive ranks trigger a coordinated
   :class:`RepartitionSignal` exit and a model-platform downgrade.

The interpreter tying plans to execution is
:class:`~repro.faults.injector.FaultInjector`; the wall-clock backend
interposes it via :class:`~repro.faults.injector.FaultyCommunicator`.
The chaos-sweep harness (:mod:`repro.faults.sweep`) and the umbrella
CLI (``python -m repro.faults``) sit on top.
"""

from repro.faults.adaptive import (
    AdaptationEvent,
    AdaptiveConfig,
    AdaptiveController,
    RepartitionSignal,
)
from repro.faults.detect import (
    DEFAULT_RETRY_POLICY,
    LivenessView,
    liveness_of,
    policy_of,
    recv_with_timeout,
    send_with_retry,
)
from repro.faults.injector import FaultInjector, FaultyCommunicator, injector_for
from repro.faults.plan import (
    FaultPlan,
    LinkDegrade,
    MessageDelay,
    MessageDrop,
    RankCrash,
    RankSlowdown,
    load_fault_plan,
)
from repro.faults.policy import (
    DEFAULT_POLICY,
    DeadlinePolicy,
    ResiliencePolicy,
    RetryPolicy,
    load_policy,
)
from repro.faults.recovery import (
    CheckpointStore,
    RecoveredRun,
    RecoveryAttempt,
    run_with_recovery,
)

__all__ = [
    # plans
    "FaultPlan",
    "RankCrash",
    "RankSlowdown",
    "LinkDegrade",
    "MessageDelay",
    "MessageDrop",
    "load_fault_plan",
    # injection
    "FaultInjector",
    "FaultyCommunicator",
    "injector_for",
    # policies
    "RetryPolicy",
    "DeadlinePolicy",
    "ResiliencePolicy",
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_POLICY",
    "load_policy",
    "policy_of",
    # detection
    "send_with_retry",
    "recv_with_timeout",
    "LivenessView",
    "liveness_of",
    # recovery
    "CheckpointStore",
    "RecoveryAttempt",
    "RecoveredRun",
    "run_with_recovery",
    # adaptation
    "AdaptiveConfig",
    "AdaptiveController",
    "AdaptationEvent",
    "RepartitionSignal",
]
