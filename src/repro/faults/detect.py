"""Failure detection primitives: deadlines, retry, liveness.

Detection is *bounded*: every helper here either succeeds within a
configured budget or raises a specific :mod:`repro.errors` exception —
no operation silently hangs.  On the virtual-time engine, deadlines and
backoff are charged in virtual seconds, so detection behaviour is fully
deterministic and shows up in exported traces.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import (
    CommunicationTimeout,
    ConfigurationError,
    TransientNetworkError,
)

__all__ = [
    "RetryPolicy",
    "send_with_retry",
    "recv_with_timeout",
    "LivenessView",
    "liveness_of",
]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient faults.

    Attributes:
        max_attempts: total tries (first attempt included).
        backoff_s: wait charged before the first retry.
        backoff_factor: multiplier applied to the wait per retry.
    """

    max_attempts: int = 4
    backoff_s: float = 0.01
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0 or self.backoff_factor <= 0:
            raise ConfigurationError(
                f"invalid backoff ({self.backoff_s}s × {self.backoff_factor})"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff charged after failed attempt ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_factor ** (attempt - 1)


DEFAULT_RETRY_POLICY = RetryPolicy()


def send_with_retry(
    ctx: Any,
    dest: int,
    payload: Any,
    tag: int = 0,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    timeout_s: float | None = None,
) -> int:
    """Send, resending on :class:`TransientNetworkError` (lost message).

    The backoff between attempts is charged to the sender's clock via
    ``ctx.charge_seconds`` — virtual time on the engine (deterministic),
    a modelled no-op on the wall-clock backend.  Returns the number of
    attempts used; re-raises the last error when the budget is spent.
    Non-transient errors (peer failed, timeout) propagate immediately.
    """
    kwargs: dict[str, Any] = {}
    if timeout_s is not None:
        kwargs["timeout_s"] = timeout_s
    for attempt in range(1, policy.max_attempts + 1):
        try:
            ctx.send(dest, payload, tag, **kwargs)
            return attempt
        except TransientNetworkError:
            obs = getattr(ctx, "obs", None)
            if obs is not None:
                obs.metrics.counter(
                    "fault.retries", rank=ctx.rank, peer=dest
                ).inc()
            if attempt == policy.max_attempts:
                raise
            ctx.charge_seconds(policy.backoff_for(attempt))
    raise AssertionError("unreachable")  # pragma: no cover


def recv_with_timeout(
    ctx: Any, source: int, tag: int = -1, timeout_s: float | None = None
) -> Any:
    """Receive with a per-operation deadline.

    Thin wrapper over ``ctx.recv(..., timeout_s=...)`` for contexts
    that support deadlines; raises
    :class:`~repro.errors.CommunicationTimeout` on expiry.
    """
    if timeout_s is None:
        return ctx.recv(source, tag)
    return ctx.recv(source, tag, timeout_s=timeout_s)


class LivenessView:
    """Heartbeat-style liveness snapshot derived from the router.

    The rendezvous router already observes every rank's lifecycle
    (explicit :meth:`~repro.cluster.mailbox.Router.fail` marks and
    program retirement), so no extra heartbeat messages are needed —
    this view just exposes that ground truth to recovery code.
    """

    def __init__(self, router: Any) -> None:
        self._router = router

    def failed(self) -> frozenset[int]:
        """Ranks confirmed crashed."""
        return self._router.failed_ranks()

    def retired(self) -> frozenset[int]:
        """Ranks whose programs finished (cleanly or not)."""
        return self._router.retired_ranks()

    def is_alive(self, rank: int) -> bool:
        """True while ``rank`` has neither crashed nor finished."""
        return rank not in self.failed() and rank not in self.retired()

    def suspects(self, ranks: Any) -> frozenset[int]:
        """Subset of ``ranks`` that are confirmed failed."""
        failed = self.failed()
        return frozenset(r for r in ranks if r in failed)


def liveness_of(ctx: Any) -> LivenessView:
    """Build a :class:`LivenessView` from any backend's rank context.

    Works with the engine's ``RankContext``, the inproc context, a
    :class:`~repro.faults.injector.FaultyCommunicator`, and the
    high-level ``Communicator`` wrapper (unwraps ``.context`` /
    ``._ctx`` as needed).
    """
    seen = set()
    obj = ctx
    while id(obj) not in seen:
        seen.add(id(obj))
        router = getattr(obj, "router", None)
        if router is not None:
            return LivenessView(router)
        inner = getattr(obj, "context", None) or getattr(obj, "_ctx", None)
        if inner is None:
            break
        obj = inner
    raise ConfigurationError(
        f"cannot derive a liveness view from {type(ctx).__name__}: "
        "no router is reachable"
    )
