"""Failure detection primitives: deadlines, retry, liveness.

Detection is *bounded*: every helper here either succeeds within a
configured budget or raises a specific :mod:`repro.errors` exception —
no operation silently hangs.  On the virtual-time engine, deadlines and
backoff are charged in virtual seconds, so detection behaviour is fully
deterministic and shows up in exported traces.

Budgets are declarative: helpers accept either a bare
:class:`~repro.faults.policy.RetryPolicy` (legacy) or a full
:class:`~repro.faults.policy.ResiliencePolicy` whose ``deadline`` block
supplies the per-op timeouts, so a JSON policy file — standalone or
embedded in a fault plan — configures the whole detection layer.
Attempt accounting is surfaced through the session metrics
(``fault.attempts`` / ``fault.retries`` / ``fault.backoff_s``) and a
``fault``-category ``fault.retry`` span per backoff.
"""

from __future__ import annotations

from typing import Any

from repro.errors import (
    CommunicationTimeout,
    ConfigurationError,
    TransientNetworkError,
)
from repro.faults.policy import (
    DEFAULT_RETRY_POLICY,
    DeadlinePolicy,
    ResiliencePolicy,
    RetryPolicy,
    deadline_of,
    retry_of,
)

__all__ = [
    "RetryPolicy",
    "DeadlinePolicy",
    "ResiliencePolicy",
    "policy_of",
    "send_with_retry",
    "recv_with_timeout",
    "LivenessView",
    "liveness_of",
]


def _now_of(ctx: Any) -> float:
    """Best-effort current time of a rank context (virtual seconds on
    the engine, the injector's nominal clock inproc, else 0.0)."""
    clock = getattr(ctx, "clock", None)
    if clock is not None:
        return float(clock.now)
    nominal = getattr(ctx, "_nominal_s", None)
    if nominal is not None:
        return float(nominal)
    return 0.0


def policy_of(ctx: Any) -> ResiliencePolicy | None:
    """The resilience policy travelling with the context's fault plan.

    Unwraps the context chain looking for a fault injector whose plan
    carries a ``policy`` block; returns ``None`` when there is none, so
    callers can fall back to their defaults.
    """
    seen = set()
    obj = ctx
    while obj is not None and id(obj) not in seen:
        seen.add(id(obj))
        for name in ("injector", "faults"):
            injector = getattr(obj, name, None)
            policy = getattr(injector, "policy", None)
            if policy is not None:
                return policy
        obj = (
            getattr(obj, "context", None)
            or getattr(obj, "_ctx", None)
            or getattr(obj, "engine", None)
        )
    return None


def send_with_retry(
    ctx: Any,
    dest: int,
    payload: Any,
    tag: int = 0,
    policy: "RetryPolicy | ResiliencePolicy | None" = None,
    timeout_s: float | None = None,
) -> int:
    """Send, resending on :class:`TransientNetworkError` (lost message).

    ``policy`` may be a bare :class:`RetryPolicy` or a full
    :class:`ResiliencePolicy`; when ``None``, the policy embedded in
    the context's fault plan applies (falling back to the default
    retry budget).  An explicit ``timeout_s`` overrides the policy's
    ``send_timeout_s`` deadline.  The backoff between attempts is
    charged to the sender's clock via ``ctx.charge_seconds`` — virtual
    time on the engine (deterministic), a modelled no-op on the
    wall-clock backend.  Returns the number of attempts used; re-raises
    the last error when the budget is spent.  Non-transient errors
    (peer failed, timeout) propagate immediately.
    """
    if policy is None:
        policy = policy_of(ctx)
    retry = retry_of(policy)
    if timeout_s is None:
        timeout_s = deadline_of(policy).send_timeout_s
    kwargs: dict[str, Any] = {}
    if timeout_s is not None:
        kwargs["timeout_s"] = timeout_s
    obs = getattr(ctx, "obs", None)
    for attempt in range(1, retry.max_attempts + 1):
        try:
            ctx.send(dest, payload, tag, **kwargs)
            if obs is not None:
                obs.metrics.counter(
                    "fault.attempts", rank=ctx.rank, peer=dest
                ).inc(attempt)
            return attempt
        except TransientNetworkError:
            if obs is not None:
                obs.metrics.counter(
                    "fault.retries", rank=ctx.rank, peer=dest
                ).inc()
            if attempt == retry.max_attempts:
                if obs is not None:
                    obs.metrics.counter(
                        "fault.attempts", rank=ctx.rank, peer=dest
                    ).inc(attempt)
                raise
            backoff = retry.backoff_for(attempt)
            start = _now_of(ctx)
            ctx.charge_seconds(backoff)
            if obs is not None:
                obs.metrics.counter(
                    "fault.backoff_s", rank=ctx.rank
                ).inc(backoff)
                obs.tracer.add_span(
                    "fault.retry", ctx.rank, start, start + backoff,
                    category="fault", attempt=attempt, peer=dest, tag=tag,
                )
    raise AssertionError("unreachable")  # pragma: no cover


def recv_with_timeout(
    ctx: Any,
    source: int,
    tag: int = -1,
    timeout_s: float | None = None,
    policy: "ResiliencePolicy | None" = None,
) -> Any:
    """Receive with a per-operation deadline.

    Thin wrapper over ``ctx.recv(..., timeout_s=...)`` for contexts
    that support deadlines; the deadline comes from ``timeout_s``, else
    the policy's (or the fault plan's embedded policy's)
    ``recv_timeout_s``.  Raises
    :class:`~repro.errors.CommunicationTimeout` on expiry.
    """
    if timeout_s is None:
        if policy is None:
            policy = policy_of(ctx)
        timeout_s = deadline_of(policy).recv_timeout_s
    if timeout_s is None:
        return ctx.recv(source, tag)
    return ctx.recv(source, tag, timeout_s=timeout_s)


class LivenessView:
    """Heartbeat-style liveness snapshot derived from the router.

    The rendezvous router already observes every rank's lifecycle
    (explicit :meth:`~repro.cluster.mailbox.Router.fail` marks and
    program retirement), so no extra heartbeat messages are needed —
    this view just exposes that ground truth to recovery code.
    """

    def __init__(self, router: Any) -> None:
        self._router = router

    def failed(self) -> frozenset[int]:
        """Ranks confirmed crashed."""
        return self._router.failed_ranks()

    def retired(self) -> frozenset[int]:
        """Ranks whose programs finished (cleanly or not)."""
        return self._router.retired_ranks()

    def is_alive(self, rank: int) -> bool:
        """True while ``rank`` has neither crashed nor finished."""
        return rank not in self.failed() and rank not in self.retired()

    def suspects(self, ranks: Any) -> frozenset[int]:
        """Subset of ``ranks`` that are confirmed failed."""
        failed = self.failed()
        return frozenset(r for r in ranks if r in failed)


def liveness_of(ctx: Any) -> LivenessView:
    """Build a :class:`LivenessView` from any backend's rank context.

    Works with the engine's ``RankContext``, the inproc context, a
    :class:`~repro.faults.injector.FaultyCommunicator`, and the
    high-level ``Communicator`` wrapper (unwraps ``.context`` /
    ``._ctx`` as needed).
    """
    seen = set()
    obj = ctx
    while id(obj) not in seen:
        seen.add(id(obj))
        router = getattr(obj, "router", None)
        if router is not None:
            return LivenessView(router)
        inner = getattr(obj, "context", None) or getattr(obj, "_ctx", None)
        if inner is None:
            break
        obj = inner
    raise ConfigurationError(
        f"cannot derive a liveness view from {type(ctx).__name__}: "
        "no router is reachable"
    )
