"""Checkpoint–restart recovery with WEA-driven degraded mode.

When a planned (or organic) rank crash kills a run, the master-side
driver here does what Plaza's "future perspectives" sketch for networks
of workstations: confirm the loss, re-run the Workload Estimation
Algorithm over the *surviving* processors, rescatter, and continue the
iterative algorithm from its last completed iteration instead of from
scratch.

Recovery is attempt-structured rather than mid-collective: the SPMD
programs use collectives whose membership cannot change under them, so
each confirmed rank loss ends the current attempt and the next attempt
runs on a survivor-subset platform (master first, then surviving ranks
in ascending original order).  A shared in-memory
:class:`CheckpointStore` carries the master's per-iteration state
across attempts, and on the virtual-time engine the next attempt's
clocks resume from the failure time (plus an optional modelled
repartition overhead), so the exported trace shows one continuous
timeline with ``recovery.repartition`` spans at the seams.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Any, Mapping

from repro.cluster.costs import CostModel
from repro.cluster.engine import SimulationEngine, SimulationResult
from repro.cluster.mailbox import copy_payload
from repro.cluster.perturb import scale_rank_compute
from repro.cluster.platform import HeterogeneousPlatform
from repro.errors import (
    ConfigurationError,
    RankFailedError,
    RepartitionSignal,
    ReproError,
)
from repro.faults.adaptive import (
    AdaptationEvent,
    AdaptiveConfig,
    AdaptiveController,
)
from repro.faults.injector import FaultInjector, injector_for
from repro.faults.plan import FaultPlan
from repro.hsi.cube import HyperspectralImage
from repro.mpi.inproc import InprocResult, run_inproc
from repro.perf.imbalance import ImbalanceScores, imbalance_of_run
from repro.scheduling.static_part import RowPartition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsSession
    from repro.tuning.planner import TuningPlan

__all__ = [
    "CheckpointStore",
    "RecoveryAttempt",
    "RecoveredRun",
    "run_with_recovery",
]


class CheckpointStore:
    """Thread-safe in-memory checkpoint of master iteration state.

    Holds at most one snapshot — the highest ``step`` saved so far —
    with value semantics (arrays are copied on save and on load, so a
    resumed attempt cannot alias state into a dead attempt's objects).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._step: int | None = None
        self._state: dict[str, Any] | None = None

    def save(self, step: int, state: Mapping[str, Any]) -> None:
        """Record ``state`` for completed iteration count ``step``
        (keeps the highest step seen)."""
        with self._lock:
            if self._step is None or step >= self._step:
                self._step = int(step)
                self._state = {k: copy_payload(v) for k, v in state.items()}

    def load(self) -> tuple[int, dict[str, Any]] | None:
        """Latest ``(step, state)`` snapshot, or ``None`` if empty."""
        with self._lock:
            if self._step is None or self._state is None:
                return None
            return self._step, {
                k: copy_payload(v) for k, v in self._state.items()
            }

    @property
    def step(self) -> int | None:
        with self._lock:
            return self._step


@dataclasses.dataclass(frozen=True)
class RecoveryAttempt:
    """One execution attempt of a fault-tolerant run.

    Attributes:
        index: 0-based attempt number.
        ranks: original rank ids that participated (master first).
        crashed_rank: original id of the rank whose loss ended this
            attempt, or ``None`` for the successful final attempt.
        clock_start: virtual time at which the attempt's clocks started
            (sim backend; 0.0 inproc).
        resumed_step: checkpoint step the attempt resumed from (0 =
            from scratch).
        adapted_rank: original id of the drifting rank whose detection
            ended this attempt (adaptive runs), else ``None``.
        adapted_factor: the slowdown factor folded into the model for
            ``adapted_rank``, else ``None``.
        tuned_variant: the partition variant the autotuning planner
            chose for this attempt (tuned runs), else ``None``.
    """

    index: int
    ranks: tuple[int, ...]
    crashed_rank: int | None
    clock_start: float
    resumed_step: int
    adapted_rank: int | None = None
    adapted_factor: float | None = None
    tuned_variant: str | None = None


@dataclasses.dataclass
class RecoveredRun:
    """Outcome of a fault-tolerant execution.

    Attributes:
        algorithm, variant: what was run.
        output: the algorithm result from the final attempt's master.
        partition: WEA row partition of the *final* (post-recovery)
            platform.
        platform: the final survivor platform the result was computed
            on (the full platform when nothing crashed).
        attempts: every attempt, failed and final.
        crashed_ranks: original ids of all ranks lost along the way.
        sim / inproc: the final attempt's backend result.
        imbalance: ``D_all``/``D_minus`` re-computed for the
            post-recovery partition (sim backend; ``None`` inproc).
        adaptations: committed straggler repartitions, in order
            (adaptive runs; empty otherwise).
        model_platform: the *model* platform the final partition was
            computed from — the real platform with every adapted
            rank's calibrated speed downgraded (``None`` unless the
            run was adaptive).
    """

    algorithm: str
    variant: str
    output: Any
    partition: RowPartition
    platform: HeterogeneousPlatform
    attempts: tuple[RecoveryAttempt, ...]
    crashed_ranks: tuple[int, ...]
    sim: SimulationResult | None = None
    inproc: InprocResult | None = None
    imbalance: ImbalanceScores | None = None
    adaptations: tuple[AdaptationEvent, ...] = ()
    model_platform: HeterogeneousPlatform | None = None

    @property
    def recovered(self) -> bool:
        return bool(self.crashed_ranks)

    @property
    def adapted(self) -> bool:
        return bool(self.adaptations)

    @property
    def makespan(self) -> float:
        if self.sim is None:
            raise ConfigurationError("makespan requires the sim backend")
        return self.sim.makespan


def run_with_recovery(
    algorithm: str,
    image: HyperspectralImage,
    platform: HeterogeneousPlatform,
    params: Mapping[str, Any] | None = None,
    variant: str = "hetero",
    backend: str = "sim",
    cost_model: CostModel | None = None,
    plan: "FaultPlan | FaultInjector | None" = None,
    obs: "ObsSession | None" = None,
    max_recoveries: int | None = None,
    deadlock_grace_s: float = 0.25,
    repartition_overhead_s: float = 0.0,
    adaptive: "AdaptiveController | AdaptiveConfig | bool | None" = None,
    tuning: "TuningPlan | str | None" = None,
) -> RecoveredRun:
    """Run an algorithm, surviving planned/confirmed worker crashes.

    Each confirmed rank loss triggers: WEA re-partitioning over the
    survivors (master first, remaining ranks in ascending original
    order), a rescatter, and — for the iterative target detectors —
    a resume from the master's last completed iteration via a shared
    :class:`CheckpointStore`.  A master crash is unrecoverable and
    re-raised, as is any non-crash failure.

    Args:
        algorithm: one of :data:`repro.core.runner.ALGORITHM_NAMES`.
        image: the scene (master-held).
        platform: the full starting platform.
        params: algorithm parameters (see ``run_parallel``).
        variant: partitioning variant for every (re-)partition.
        backend: ``"sim"`` (virtual time) or ``"inproc"`` (wall clock).
        cost_model: flop/byte accounting.
        plan: a :class:`FaultPlan` (an injector is created) or a ready
            :class:`FaultInjector` (shared fault state), or ``None``
            to run fault-free but recovery-capable.
        obs: observability session; fault/recovery spans and counters
            land here.
        max_recoveries: abort after this many rank losses (``None`` =
            unbounded; a plan bounds losses naturally).
        deadlock_grace_s: router grace period per attempt.
        repartition_overhead_s: modelled virtual seconds added at each
            recovery seam (sim backend).
        adaptive: enable performance-adaptive repartitioning — pass
            ``True`` (defaults), an :class:`AdaptiveConfig`, or a
            pre-built :class:`AdaptiveController`.  Requires a
            checkpointed detector (``atdca``/``ufcls``).  The health
            monitor's straggler flag triggers a coordinated exit at
            the next iteration boundary; the drifted rank's speed is
            downgraded in a *model* copy of the platform (the engine
            keeps charging the real specs — the node didn't change,
            our calibration of it did), WEA re-partitions on the
            model, and the run resumes from the checkpoint.
        tuning: a :class:`repro.tuning.planner.TuningPlan` (used for
            the first attempt; must match this run) or ``"auto"``
            (every attempt is planned fresh).  After a rank loss or a
            committed adaptation the planner re-runs on the survivor
            (or speed-downgraded model) platform, so the recovered
            attempt gets re-optimized kernel variants and partition —
            ``variant`` is ignored while a plan is active, and each
            :class:`RecoveryAttempt` records its ``tuned_variant``.

    Returns:
        A :class:`RecoveredRun`; ``imbalance`` carries the Table 7
        ``D_all``/``D_minus`` for the post-recovery partition.
    """
    from repro.core.runner import (
        _PROGRAMS,
        build_program_kwargs,
        make_row_partition,
    )

    if backend not in ("sim", "inproc"):
        raise ConfigurationError(f"unknown backend {backend!r}")
    if repartition_overhead_s < 0:
        raise ConfigurationError(
            f"repartition_overhead_s must be >= 0, got {repartition_overhead_s}"
        )
    params = dict(params or {})
    injector = injector_for(plan)
    program = _PROGRAMS.get(algorithm)
    if program is None:
        raise ConfigurationError(f"unknown algorithm {algorithm!r}")
    checkpoint = (
        CheckpointStore() if algorithm in ("atdca", "ufcls") else None
    )

    initial_plan = None
    if tuning is not None:
        from repro.tuning.planner import TuningPlan

        if isinstance(tuning, TuningPlan):
            initial_plan = tuning
            mismatches = [
                f"{what}: plan has {got!r}, run has {want!r}"
                for what, got, want in (
                    ("algorithm", initial_plan.algorithm, algorithm),
                    ("rows", initial_plan.rows, int(image.rows)),
                    ("cols", initial_plan.cols, int(image.cols)),
                    ("bands", initial_plan.bands, int(image.bands)),
                    ("platform size", initial_plan.platform_size,
                     int(platform.size)),
                )
                if got != want
            ]
            if mismatches:
                raise ConfigurationError(
                    "tuning plan does not match this run — "
                    + "; ".join(mismatches)
                )
        elif tuning != "auto":
            raise ConfigurationError(
                f"tuning must be a TuningPlan or 'auto', got {tuning!r}"
            )

    controller: AdaptiveController | None = None
    if adaptive:
        if isinstance(adaptive, AdaptiveController):
            controller = adaptive
        elif isinstance(adaptive, AdaptiveConfig):
            controller = AdaptiveController(adaptive)
        elif adaptive is True:
            controller = AdaptiveController()
        else:
            raise ConfigurationError(
                "adaptive must be True, an AdaptiveConfig, or an "
                f"AdaptiveController, got {adaptive!r}"
            )
        if checkpoint is None:
            raise ConfigurationError(
                "adaptive repartitioning needs a checkpointed detector "
                f"(atdca or ufcls), not {algorithm!r}"
            )
        # The controller reads the live health monitor; make sure one
        # is observing the run.
        if obs is None or obs.live is None:
            from repro.obs import ObsSession
            from repro.obs.live import LiveRuntime

            if obs is None:
                obs = ObsSession.create(live=LiveRuntime())
            else:
                obs.live = LiveRuntime()
                obs.live.attach(obs)

    master_orig = platform.master_rank
    survivors = set(range(platform.size))
    identity = tuple(range(platform.size))
    attempts: list[RecoveryAttempt] = []
    crashed: list[int] = []
    clock_start = 0.0
    # The *model* platform drives partitioning; adaptive repartitions
    # edit only this copy.  The engine keeps charging the real
    # ``platform`` — an injected slowdown multiplies on top of whatever
    # the engine charges, so downgrading the charged spec too would
    # double-penalize the drifted rank.
    model_platform = platform

    while True:
        ordered = tuple(
            [master_orig] + sorted(survivors - {master_orig})
        )
        if len(ordered) < 2:
            raise ReproError(
                f"fault-tolerant {algorithm}: no workers left after "
                f"{len(crashed)} rank losses"
            )
        if ordered == identity:
            run_platform = platform
            model_run = model_platform
        else:
            run_platform = platform.subset(
                ordered, name=f"{platform.name}[recovered:{len(ordered)}]"
            )
            model_run = (
                run_platform
                if model_platform is platform
                else model_platform.subset(
                    ordered,
                    name=f"{model_platform.name}[recovered:{len(ordered)}]",
                )
            )
        attempt_plan = None
        if tuning is not None:
            if (initial_plan is not None and ordered == identity
                    and model_run is platform):
                attempt_plan = initial_plan
            else:
                # Re-plan on the survivor / speed-downgraded model
                # platform: the optimal partition variant can change
                # when the processor mix changes.
                from repro.tuning.planner import plan_run

                attempt_plan = plan_run(
                    algorithm, model_run,
                    image.rows, image.cols, image.bands, params,
                    backend=backend, cost_model=cost_model,
                )
                if controller is not None and attempts:
                    controller.note_retune(attempt_plan.partition_variant)
        if attempt_plan is not None:
            partition = attempt_plan.row_partition()
        else:
            partition = make_row_partition(
                model_run, image, algorithm, params, variant, cost_model
            )
        if injector is not None:
            injector.attach(
                platform=run_platform,
                obs=obs,
                rank_map=None if ordered == identity else ordered,
            )
        live = getattr(obs, "live", None) if obs is not None else None
        if live is not None:
            # Rebind per attempt: post-recovery attempts run on the
            # surviving subset platform, and the nominal per-rank
            # clocks restart with it.
            live.bind(platform=run_platform, faults=injector)
        program_kwargs = build_program_kwargs(
            algorithm, params, partition,
            kernels=attempt_plan.kernels if attempt_plan else None,
        )
        if checkpoint is not None:
            program_kwargs["checkpoint"] = checkpoint
            if attempt_plan is not None:
                program_kwargs["checkpoint_every"] = int(
                    attempt_plan.checkpoint_every
                )
        if controller is not None:
            controller.attach(
                monitor=obs.live.health,
                rank_map=None if ordered == identity else ordered,
            )
            program_kwargs["adaptive"] = controller
        resumed_step = (checkpoint.step or 0) if checkpoint is not None else 0
        tuned_variant = (
            attempt_plan.partition_variant if attempt_plan is not None
            else None
        )
        master = run_platform.master_rank
        kwargs_per_rank = [
            {"image": image if rank == master else None}
            for rank in range(run_platform.size)
        ]

        engine: SimulationEngine | None = None
        try:
            if backend == "sim":
                engine = SimulationEngine(
                    run_platform,
                    cost_model=cost_model,
                    deadlock_grace_s=deadlock_grace_s,
                    obs=obs,
                    faults=injector,
                    clock_start=clock_start,
                )
                sim = engine.run(program, kwargs_per_rank, program_kwargs)
                attempts.append(
                    RecoveryAttempt(
                        index=len(attempts),
                        ranks=ordered,
                        crashed_rank=None,
                        clock_start=clock_start,
                        resumed_step=resumed_step,
                        tuned_variant=tuned_variant,
                    )
                )
                scores: ImbalanceScores | None
                try:
                    scores = imbalance_of_run(sim)
                except ConfigurationError:
                    scores = None
                return RecoveredRun(
                    algorithm=algorithm,
                    variant=tuned_variant or variant,
                    output=sim.return_values[master],
                    partition=partition,
                    platform=run_platform,
                    attempts=tuple(attempts),
                    crashed_ranks=tuple(crashed),
                    sim=sim,
                    imbalance=scores,
                    adaptations=(
                        tuple(controller.events) if controller else ()
                    ),
                    model_platform=model_run if controller else None,
                )
            inproc = run_inproc(
                run_platform.size,
                program,
                kwargs_per_rank=kwargs_per_rank,
                master_rank=master,
                deadlock_grace_s=deadlock_grace_s,
                obs=obs,
                faults=injector,
                **program_kwargs,
            )
            attempts.append(
                RecoveryAttempt(
                    index=len(attempts),
                    ranks=ordered,
                    crashed_rank=None,
                    clock_start=clock_start,
                    resumed_step=resumed_step,
                    tuned_variant=tuned_variant,
                )
            )
            return RecoveredRun(
                algorithm=algorithm,
                variant=tuned_variant or variant,
                output=inproc.return_values[master],
                partition=partition,
                platform=run_platform,
                attempts=tuple(attempts),
                crashed_ranks=tuple(crashed),
                inproc=inproc,
                adaptations=tuple(controller.events) if controller else (),
                model_platform=model_run if controller else None,
            )
        except RankFailedError as exc:
            lost_orig = ordered[exc.rank]
            if lost_orig == master_orig:
                raise  # master loss is unrecoverable by design
            if max_recoveries is not None and len(crashed) >= max_recoveries:
                raise
            attempts.append(
                RecoveryAttempt(
                    index=len(attempts),
                    ranks=ordered,
                    crashed_rank=lost_orig,
                    clock_start=clock_start,
                    resumed_step=resumed_step,
                    tuned_variant=tuned_variant,
                )
            )
            crashed.append(lost_orig)
            survivors.discard(lost_orig)
            detected_at = clock_start
            if engine is not None:
                detected_at = max(c.now for c in engine.clocks)
                clock_start = detected_at + repartition_overhead_s
            if obs is not None:
                obs.metrics.counter("fault.detected", rank=exc.rank).inc()
                obs.metrics.counter("recovery.attempts").inc()
                obs.metrics.counter("recovery.repartition_s").inc(
                    repartition_overhead_s
                )
                # ``ranks`` records the next attempt's dense-rank →
                # original-rank mapping (master first, survivors in
                # ascending original order) so trace consumers — e.g.
                # ``gantt_of_trace`` — can place post-recovery spans on
                # the original lanes.
                next_ordered = tuple(
                    [master_orig] + sorted(survivors - {master_orig})
                )
                obs.tracer.add_span(
                    "recovery.repartition",
                    master,
                    detected_at,
                    clock_start if backend == "sim" else detected_at,
                    category="fault",
                    lost_rank=lost_orig,
                    survivors=len(survivors),
                    ranks=",".join(str(r) for r in next_ordered),
                )
            # Loop: re-run WEA over the survivors and resume.
        except RepartitionSignal as exc:
            assert controller is not None  # only adaptive runs raise it
            drifted_orig = ordered[exc.rank]
            controller.commit(
                exc.rank, exc.factor, last_error=exc.ewma, step=exc.step
            )
            attempts.append(
                RecoveryAttempt(
                    index=len(attempts),
                    ranks=ordered,
                    crashed_rank=None,
                    clock_start=clock_start,
                    resumed_step=resumed_step,
                    adapted_rank=drifted_orig,
                    adapted_factor=exc.factor,
                    tuned_variant=tuned_variant,
                )
            )
            model_platform = scale_rank_compute(
                model_platform, drifted_orig, exc.factor
            )
            detected_at = clock_start
            if engine is not None:
                detected_at = max(c.now for c in engine.clocks)
                clock_start = detected_at + repartition_overhead_s
            if obs is not None:
                obs.metrics.counter("adaptive.repartitions").inc()
                obs.metrics.counter("recovery.attempts").inc()
                obs.metrics.counter("recovery.repartition_s").inc(
                    repartition_overhead_s
                )
                obs.tracer.add_span(
                    "adaptive.repartition",
                    master,
                    detected_at,
                    clock_start if backend == "sim" else detected_at,
                    category="fault",
                    drifted_rank=drifted_orig,
                    factor=exc.factor,
                    step=exc.step,
                    ranks=",".join(str(r) for r in ordered),
                )
            # Loop: same ranks, WEA over the downgraded model.
