"""Derived datatype descriptors.

The paper notes: "We made use of MPI derived datatypes to directly
scatter hyperspectral data structures, which may be stored
non-contiguously in memory, in a single communication step."  This
module reproduces that capability: a datatype describes a strided
selection of a flat buffer; :func:`pack` linearizes it into one
contiguous message and :func:`unpack` restores the layout on the
receiving side — so e.g. a row slab of a band-sequential (BSQ) cube,
which is non-contiguous, ships as a single send.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.types import FloatArray

__all__ = ["VectorDatatype", "pack", "unpack", "bsq_row_slab_type"]


@dataclasses.dataclass(frozen=True)
class VectorDatatype:
    """An MPI ``MPI_Type_vector``-style strided datatype.

    Selects ``count`` blocks of ``blocklength`` consecutive elements,
    the starts of successive blocks separated by ``stride`` elements.

    Attributes:
        count: number of blocks.
        blocklength: elements per block.
        stride: element distance between block starts (>= blocklength
            for non-overlapping selections).
    """

    count: int
    blocklength: int
    stride: int

    def __post_init__(self) -> None:
        if self.count < 1 or self.blocklength < 1:
            raise ConfigurationError(
                f"count and blocklength must be >= 1, got "
                f"({self.count}, {self.blocklength})"
            )
        if self.stride < self.blocklength:
            raise ConfigurationError(
                f"stride {self.stride} overlaps blocks of length "
                f"{self.blocklength}"
            )

    @property
    def n_elements(self) -> int:
        """Total selected elements."""
        return self.count * self.blocklength

    @property
    def extent(self) -> int:
        """Buffer span touched: from first to one-past-last element."""
        return (self.count - 1) * self.stride + self.blocklength

    def indices(self, offset: int = 0) -> np.ndarray:
        """Flat element indices selected (with optional start offset)."""
        block_starts = offset + np.arange(self.count) * self.stride
        return (block_starts[:, None] + np.arange(self.blocklength)).ravel()


def pack(buffer: FloatArray, datatype: VectorDatatype, offset: int = 0) -> FloatArray:
    """Gather the datatype's selection of ``buffer`` into one contiguous
    array (the single-message wire form).

    Args:
        buffer: a 1-D array (flatten cubes first).
        datatype: the strided selection.
        offset: starting element in ``buffer``.
    """
    flat = np.asarray(buffer).ravel()
    if offset < 0 or offset + datatype.extent > flat.size:
        raise ShapeError(
            f"datatype extent {datatype.extent} at offset {offset} exceeds "
            f"buffer of {flat.size} elements"
        )
    return flat[datatype.indices(offset)].copy()


def unpack(
    message: FloatArray,
    datatype: VectorDatatype,
    out: FloatArray,
    offset: int = 0,
) -> FloatArray:
    """Scatter a packed message back into a strided selection of ``out``."""
    msg = np.asarray(message).ravel()
    if msg.size != datatype.n_elements:
        raise ShapeError(
            f"message has {msg.size} elements, datatype selects "
            f"{datatype.n_elements}"
        )
    flat = out.reshape(-1)
    if offset < 0 or offset + datatype.extent > flat.size:
        raise ShapeError(
            f"datatype extent {datatype.extent} at offset {offset} exceeds "
            f"output buffer of {flat.size} elements"
        )
    flat[datatype.indices(offset)] = msg
    return out


def bsq_row_slab_type(
    bands: int, rows: int, cols: int, slab_rows: int
) -> VectorDatatype:
    """Datatype selecting a ``slab_rows``-row spatial slab of a BSQ cube.

    In BSQ storage — ``(bands, rows, cols)`` flattened — one spatial row
    slab appears as ``bands`` blocks of ``slab_rows × cols`` elements,
    strided ``rows × cols`` apart.  With this type the master scatters
    hybrid spatial partitions of a BSQ file in one step per worker.
    """
    if not 1 <= slab_rows <= rows:
        raise ConfigurationError(
            f"slab_rows must be in [1, {rows}], got {slab_rows}"
        )
    return VectorDatatype(
        count=bands, blocklength=slab_rows * cols, stride=rows * cols
    )
