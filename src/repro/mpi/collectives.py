"""Tree algorithms for collective operations.

These are the classic MPICH binomial-tree schedules, expressed over a
minimal point-to-point interface (``send(dest, payload, tag)`` /
``recv(source, tag)`` with synchronous-send semantics).  Binomial trees
give O(log P) depth for broadcast and reduce — essential for the
256-node Thunderhead runs, where a flat star would serialize 255
transfers at the root.

All functions assume SPMD call discipline: every rank calls the same
collective in the same order with a consistent ``tag``.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, Sequence

from repro.errors import CommunicationError

__all__ = [
    "PointToPoint",
    "binomial_bcast",
    "binomial_reduce",
    "flat_scatter",
    "flat_gather",
]


class PointToPoint(Protocol):
    """The minimal endpoint interface collectives are built on."""

    rank: int

    @property
    def size(self) -> int: ...

    def send(self, dest: int, payload: Any, tag: int = 0) -> None: ...

    def recv(self, source: int, tag: int = -1) -> Any: ...


def _check_root(root: int, size: int) -> None:
    if not 0 <= root < size:
        raise CommunicationError(f"root {root} outside [0, {size})")


def binomial_bcast(ep: PointToPoint, obj: Any, root: int, tag: int) -> Any:
    """Broadcast ``obj`` from ``root`` along a binomial tree.

    Non-root ranks ignore their ``obj`` argument and return the
    received value; the root returns its own object unchanged.
    """
    size = ep.size
    _check_root(root, size)
    if size == 1:
        return obj
    relative = (ep.rank - root) % size

    # Phase 1: receive from the parent (the rank that differs in the
    # lowest set bit of our relative rank).
    mask = 1
    while mask < size:
        if relative & mask:
            parent = ((relative ^ mask) + root) % size
            obj = ep.recv(parent, tag)
            break
        mask <<= 1
    else:
        mask = 1 << (size - 1).bit_length()  # root: start above the top bit

    # Phase 2: forward to children.  For a non-root rank, ``mask`` is its
    # lowest set relative bit, so every halved mask satisfies
    # ``relative & mask == 0`` automatically; children are relative+mask.
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            child = ((relative + mask) + root) % size
            ep.send(child, obj, tag)
        mask >>= 1
    return obj


def binomial_reduce(
    ep: PointToPoint,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int,
    tag: int,
) -> Any:
    """Reduce ``value`` across ranks with (commutative, associative)
    ``op``; the result lands at ``root`` (others get ``None``).
    """
    size = ep.size
    _check_root(root, size)
    if size == 1:
        return value
    relative = (ep.rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            parent = ((relative ^ mask) + root) % size
            ep.send(parent, value, tag)
            return None
        peer_rel = relative | mask
        if peer_rel < size:
            peer = (peer_rel + root) % size
            other = ep.recv(peer, tag)
            value = op(value, other)
        mask <<= 1
    return value


def flat_scatter(
    ep: PointToPoint, items: Sequence[Any] | None, root: int, tag: int
) -> Any:
    """Root sends ``items[i]`` to rank ``i`` (in rank order); returns the
    local item.  Item payloads differ per rank, so the schedule is a
    star — exactly MPI_Scatterv's data movement."""
    size = ep.size
    _check_root(root, size)
    if ep.rank == root:
        if items is None or len(items) != size:
            raise CommunicationError(
                f"root must supply exactly {size} items, got "
                f"{None if items is None else len(items)}"
            )
        for dest in range(size):
            if dest != root:
                ep.send(dest, items[dest], tag)
        return items[root]
    return ep.recv(root, tag)


def flat_gather(ep: PointToPoint, obj: Any, root: int, tag: int) -> list[Any] | None:
    """Everyone sends to root; root returns the rank-ordered list
    (with its own contribution in place), others return ``None``."""
    size = ep.size
    _check_root(root, size)
    if ep.rank == root:
        out: list[Any] = [None] * size
        out[root] = obj
        for src in range(size):
            if src != root:
                out[src] = ep.recv(src, tag)
        return out
    ep.send(root, obj, tag)
    return None
