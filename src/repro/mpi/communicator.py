"""The communicator: MPI-flavoured API over a message context.

A *message context* is anything satisfying :class:`MessageContext` —
the virtual-time :class:`repro.cluster.engine.RankContext` or the
wall-clock :class:`repro.mpi.inproc.InprocContext`.  The communicator
adds tag discipline and collective operations (binomial broadcast and
reduce, star scatter/gather, allreduce, allgather, barrier), so the
parallel algorithms are written once and run on either backend.

Collective calls follow SPMD discipline: every rank must invoke the
same collectives in the same order.  An internal sequence number is
folded into the tags, so interleaving collectives with user-tagged
point-to-point traffic is safe.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import CommunicationError
from repro.mpi import collectives as _coll
from repro.obs.trace import NULL_TRACER

__all__ = ["MessageContext", "Communicator", "sum_op", "max_op", "min_op", "concat_op"]

#: Tag space reserved for collectives (user tags must stay below this).
_COLLECTIVE_TAG_BASE = 1 << 20
_COLLECTIVE_TAG_SPAN = 1 << 16


@runtime_checkable
class MessageContext(Protocol):
    """What a backend must provide to host a :class:`Communicator`."""

    rank: int

    @property
    def size(self) -> int: ...

    @property
    def master_rank(self) -> int: ...

    def send(self, dest: int, payload: Any, tag: int = 0) -> None: ...

    def recv(self, source: int, tag: int = -1) -> Any: ...

    def compute(self, mflops: float, sequential: bool = False) -> float: ...


def sum_op(a: Any, b: Any) -> Any:
    """Elementwise/arithmetic sum (arrays and scalars)."""
    return a + b


def max_op(a: Any, b: Any) -> Any:
    """Elementwise maximum for arrays, builtin max otherwise."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def min_op(a: Any, b: Any) -> Any:
    """Elementwise minimum for arrays, builtin min otherwise."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def concat_op(a: Any, b: Any) -> Any:
    """List concatenation (wrap scalars in lists before reducing)."""
    la = a if isinstance(a, list) else [a]
    lb = b if isinstance(b, list) else [b]
    return la + lb


class _DeadlineContext:
    """Context decorator applying a default per-operation deadline.

    Every send/recv that does not carry its own ``timeout_s`` gets the
    communicator's ``op_timeout_s`` — including the sends/receives
    issued *inside* collectives, which is how collectives become
    timeout-bounded without each algorithm plumbing deadlines through.
    """

    def __init__(self, ctx: MessageContext, op_timeout_s: float) -> None:
        self.context = ctx
        self.op_timeout_s = float(op_timeout_s)

    @property
    def rank(self) -> int:
        return self.context.rank

    @property
    def size(self) -> int:
        return self.context.size

    @property
    def master_rank(self) -> int:
        return self.context.master_rank

    def __getattr__(self, name: str) -> Any:
        return getattr(self.context, name)

    def compute(self, mflops: float, sequential: bool = False) -> float:
        return self.context.compute(mflops, sequential=sequential)

    def send(
        self, dest: int, payload: Any, tag: int = 0,
        timeout_s: float | None = None,
    ) -> None:
        self.context.send(
            dest, payload, tag,
            timeout_s=self.op_timeout_s if timeout_s is None else timeout_s,
        )

    def recv(
        self, source: int, tag: int = -1, timeout_s: float | None = None
    ) -> Any:
        return self.context.recv(
            source, tag,
            timeout_s=self.op_timeout_s if timeout_s is None else timeout_s,
        )


class Communicator:
    """Point-to-point plus collectives over a message context.

    Args:
        ctx: the backend context (one per rank).
        op_timeout_s: optional default deadline applied to every
            point-to-point operation — including those issued inside
            collectives — raising
            :class:`~repro.errors.CommunicationTimeout` on expiry
            (virtual seconds on the engine, wall seconds inproc).
    """

    def __init__(
        self, ctx: MessageContext, op_timeout_s: float | None = None
    ) -> None:
        self._ctx = (
            _DeadlineContext(ctx, op_timeout_s) if op_timeout_s is not None
            else ctx
        )
        self._collective_seq = 0
        self._obs = getattr(ctx, "obs", None)
        self._tracer = self._obs.tracer if self._obs is not None else NULL_TRACER

    # -- identity -----------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._ctx.rank

    @property
    def size(self) -> int:
        return self._ctx.size

    @property
    def master_rank(self) -> int:
        return self._ctx.master_rank

    @property
    def is_master(self) -> bool:
        return self.rank == self.master_rank

    @property
    def context(self) -> MessageContext:
        return self._ctx

    # -- point-to-point ---------------------------------------------------------
    def send(
        self, dest: int, payload: Any, tag: int = 0,
        timeout_s: float | None = None,
    ) -> None:
        """Synchronous send to ``dest``.  User tags live in [0, 2^20)."""
        self._check_user_tag(tag)
        if timeout_s is None:
            self._ctx.send(dest, payload, tag)
        else:
            self._ctx.send(dest, payload, tag, timeout_s=timeout_s)

    def recv(
        self, source: int, tag: int = -1, timeout_s: float | None = None
    ) -> Any:
        """Blocking receive from ``source``; tag -1 matches any user tag."""
        if tag != -1:
            self._check_user_tag(tag)
        if timeout_s is None:
            return self._ctx.recv(source, tag)
        return self._ctx.recv(source, tag, timeout_s=timeout_s)

    @staticmethod
    def _check_user_tag(tag: int) -> None:
        if not 0 <= tag < _COLLECTIVE_TAG_BASE:
            raise CommunicationError(
                f"user tag {tag} outside [0, {_COLLECTIVE_TAG_BASE})"
            )

    def _next_collective_tag(self) -> int:
        tag = _COLLECTIVE_TAG_BASE + (self._collective_seq % _COLLECTIVE_TAG_SPAN)
        self._collective_seq += 1
        return tag

    def _collective_span(self, kind: str):
        """Count the collective and bracket it with an ``"mpi"`` span.

        Composite collectives nest: an ``allreduce`` also counts (and
        spans) its inner ``reduce`` and ``bcast``.
        """
        if self._obs is not None:
            self._obs.metrics.counter(
                "mpi.collectives", rank=self.rank, kind=kind
            ).inc()
        return self._tracer.span(f"mpi.{kind}", rank=self.rank, category="mpi")

    def _account_payload(self, kind: str, obj: Any) -> None:
        """Meter this rank's contribution to a collective, in wire
        megabits — the byte side of the flop/byte profile that
        :mod:`repro.obs.profile` calibrates against the cost model."""
        if self._obs is None or obj is None:
            return
        from repro.cluster.mailbox import payload_wire_megabits

        self._obs.metrics.counter(
            "mpi.payload_megabits", rank=self.rank, kind=kind
        ).inc(payload_wire_megabits(obj))

    # -- collectives ---------------------------------------------------------------
    def bcast(self, obj: Any = None, root: int | None = None) -> Any:
        """Broadcast from ``root`` (default: master) via binomial tree."""
        root = self.master_rank if root is None else root
        with self._collective_span("bcast"):
            result = _coll.binomial_bcast(
                self._ctx, obj, root, self._next_collective_tag()
            )
        self._account_payload("bcast", result)
        return result

    def scatter(self, items: Sequence[Any] | None = None, root: int | None = None) -> Any:
        """Distribute ``items[i]`` to rank ``i`` (root supplies the list)."""
        root = self.master_rank if root is None else root
        with self._collective_span("scatter"):
            mine = _coll.flat_scatter(
                self._ctx, items, root, self._next_collective_tag()
            )
        self._account_payload("scatter", mine)
        return mine

    def gather(self, obj: Any, root: int | None = None) -> list[Any] | None:
        """Collect one object per rank at ``root`` (rank order)."""
        root = self.master_rank if root is None else root
        with self._collective_span("gather"):
            self._account_payload("gather", obj)
            return _coll.flat_gather(
                self._ctx, obj, root, self._next_collective_tag()
            )

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = sum_op,
        root: int | None = None,
    ) -> Any:
        """Tree-reduce ``value`` with commutative ``op``; result at root."""
        root = self.master_rank if root is None else root
        with self._collective_span("reduce"):
            self._account_payload("reduce", value)
            return _coll.binomial_reduce(
                self._ctx, value, op, root, self._next_collective_tag()
            )

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = sum_op) -> Any:
        """Reduce then broadcast: every rank gets the combined value."""
        root = self.master_rank
        with self._collective_span("allreduce"):
            reduced = self.reduce(value, op, root)
            return self.bcast(reduced, root)

    def allgather(self, obj: Any) -> list[Any]:
        """Everyone gets the rank-ordered list of contributions."""
        root = self.master_rank
        with self._collective_span("allgather"):
            gathered = self.gather(obj, root)
            return self.bcast(gathered, root)

    def barrier(self) -> None:
        """Synchronize all ranks (reduce + broadcast of a token)."""
        with self._collective_span("barrier"):
            self.allreduce(0, sum_op)

    def __repr__(self) -> str:
        return f"Communicator(rank={self.rank}, size={self.size})"
