"""Wall-clock in-process backend.

Runs the same SPMD programs as the virtual-time engine, but on real
threads with real time: :meth:`InprocContext.compute` is a no-op (the
actual numpy work *is* the computation) and message transfers cost
whatever the memory copy costs.  NumPy's BLAS kernels release the GIL,
so genuinely parallel speedups are possible for the dense-linear-algebra
phases; regardless, this backend is the reference for *correctness* —
algorithm outputs must be identical on both backends.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.cluster.mailbox import OpDeadline, Router, payload_wire_megabits
from repro.errors import (
    ConfigurationError,
    RankFailedError,
    RepartitionSignal,
    raise_root_cause,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.obs import ObsSession

__all__ = ["InprocContext", "InprocResult", "run_inproc"]


class InprocContext:
    """Per-rank context for the wall-clock backend.

    Satisfies :class:`repro.mpi.communicator.MessageContext`; the time
    and cost hooks are inert so programs written for the virtual engine
    run unchanged.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        router: Router,
        master_rank: int = 0,
        obs: "ObsSession | None" = None,
    ):
        if not 0 <= rank < size:
            raise ConfigurationError(f"rank {rank} outside [0, {size})")
        self.rank = rank
        self._size = size
        self._router = router
        self._master = master_rank
        #: Communication volume actually shipped by this rank (megabits).
        self.sent_megabits = 0.0
        #: Observability session shared by all ranks (``None`` = off).
        self.obs = obs

    @property
    def size(self) -> int:
        return self._size

    @property
    def master_rank(self) -> int:
        return self._master

    @property
    def is_master(self) -> bool:
        return self.rank == self._master

    @property
    def router(self) -> Router:
        """The backend's message router (liveness/detection queries)."""
        return self._router

    @staticmethod
    def _deadline(timeout_s: float | None) -> OpDeadline | None:
        """Wall-clock per-op deadline ``timeout_s`` from now."""
        if timeout_s is None:
            return None
        if timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be > 0, got {timeout_s}")
        return OpDeadline(
            at=time.monotonic() + timeout_s, clock=time.monotonic, wall=True
        )

    def compute(self, mflops: float, sequential: bool = False) -> float:
        """No time charged (real computation takes real time here), but
        the nominal mflops are still metered when observability is on,
        so both backends report comparable work counters.  When a live
        runtime is attached it additionally receives the analytic
        (predicted, observed) duration pair for this op, so the online
        health detector sees the same sequence as on the virtual-time
        engine."""
        if self.obs is not None and mflops > 0:
            self.obs.metrics.counter(
                "compute.mflops",
                rank=self.rank,
                kind="seq" if sequential else "compute",
            ).inc(float(mflops))
            live = self.obs.live
            if live is not None:
                live.observe_nominal_compute(self.rank, mflops, sequential)
        return 0.0

    def charge_seconds(self, seconds: float, phase: Any = None) -> None:
        """No-op for wall-clock execution."""

    def send(
        self, dest: int, payload: Any, tag: int = 0,
        timeout_s: float | None = None,
    ) -> None:
        megabits = payload_wire_megabits(payload)
        self.sent_megabits += megabits
        deadline = self._deadline(timeout_s)
        if self.obs is None:
            self._router.send(
                self.rank, dest, tag, payload, megabits, deadline=deadline
            )
            return
        m = self.obs.metrics
        m.counter("comm.messages_sent", rank=self.rank, peer=dest).inc()
        m.counter("comm.megabits_sent", rank=self.rank, peer=dest).inc(megabits)
        tracer = self.obs.tracer
        start = tracer.now(self.rank)
        self._router.send(
            self.rank, dest, tag, payload, megabits, deadline=deadline
        )
        tracer.add_span(
            "transfer", self.rank, start, tracer.now(self.rank),
            category="transfer", peer=dest, megabits=megabits,
            direction="send",
        )

    def recv(
        self, source: int, tag: int = -1, timeout_s: float | None = None
    ) -> Any:
        deadline = self._deadline(timeout_s)
        if self.obs is None:
            return self._router.recv(self.rank, source, tag, deadline=deadline)
        tracer = self.obs.tracer
        start = tracer.now(self.rank)
        payload = self._router.recv(self.rank, source, tag, deadline=deadline)
        megabits = payload_wire_megabits(payload)
        m = self.obs.metrics
        m.counter("comm.messages_received", rank=self.rank, peer=source).inc()
        m.counter(
            "comm.megabits_received", rank=self.rank, peer=source
        ).inc(megabits)
        tracer.add_span(
            "transfer", self.rank, start, tracer.now(self.rank),
            category="transfer", peer=source, megabits=megabits,
            direction="recv",
        )
        return payload


@dataclasses.dataclass
class InprocResult:
    """Outcome of a wall-clock run."""

    return_values: list[Any]
    wall_seconds: float

    @property
    def master_value(self) -> Any:
        return self.return_values[0]


def run_inproc(
    n_ranks: int,
    program: Callable[..., Any],
    kwargs_per_rank: Sequence[Mapping[str, Any]] | None = None,
    master_rank: int = 0,
    deadlock_grace_s: float = 0.25,
    obs: "ObsSession | None" = None,
    faults: "FaultInjector | None" = None,
    **common_kwargs: Any,
) -> InprocResult:
    """Run ``program(ctx, **kwargs)`` on ``n_ranks`` real threads.

    Args:
        n_ranks: degree of parallelism.
        program: SPMD body taking an :class:`InprocContext`.
        kwargs_per_rank: optional per-rank keyword arguments.
        master_rank: which rank plays master.
        obs: observability session (spans clocked by the wall).
        faults: fault injector; each rank's context is wrapped in a
            :class:`~repro.faults.injector.FaultyCommunicator` so the
            same plan file produces the same fault sequence as on the
            virtual-time engine.
        common_kwargs: forwarded to every rank.

    Raises:
        The first rank's exception if any rank failed.
    """
    if n_ranks < 1:
        raise ConfigurationError(f"n_ranks must be >= 1, got {n_ranks}")
    if kwargs_per_rank is not None and len(kwargs_per_rank) != n_ranks:
        raise ConfigurationError(
            f"kwargs_per_rank has {len(kwargs_per_rank)} entries for "
            f"{n_ranks} ranks"
        )
    live = getattr(obs, "live", None) if obs is not None else None
    if live is not None:
        # Wired like the fault injector: attach is idempotent, and the
        # platform (needed for nominal health predictions) is bound by
        # run_parallel / the recovery driver, which know it.
        live.attach(obs)
        if faults is not None:
            live.bind(faults=faults)
    router = Router(n_ranks, deadlock_grace_s=deadlock_grace_s)
    results: list[Any] = [None] * n_ranks
    failures: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def body(rank: int) -> None:
        ctx: Any = InprocContext(rank, n_ranks, router, master_rank, obs=obs)
        if faults is not None:
            # Imported lazily: repro.faults depends on repro.mpi.
            from repro.faults.injector import FaultyCommunicator

            ctx = FaultyCommunicator(ctx, faults)
        kwargs = dict(common_kwargs)
        if kwargs_per_rank is not None:
            kwargs.update(kwargs_per_rank[rank])
        try:
            results[rank] = program(ctx, **kwargs)
        except RankFailedError as exc:
            with lock:
                failures.append((rank, exc))
            if exc.injected and exc.rank == rank:
                # This rank crashed: mark it dead surgically so the
                # survivors keep running and observe the failure on
                # their next interaction with it.
                router.fail(rank)
            else:
                router.abort()
        except RepartitionSignal as exc:
            # Coordinated exit: every rank raises this at the same
            # program point after the decision broadcast, so nobody is
            # left blocked — retire without aborting (an abort could
            # kill peers still forwarding inside the tree).
            with lock:
                failures.append((rank, exc))
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with lock:
                failures.append((rank, exc))
            router.abort()
        finally:
            router.retire(rank)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=body, args=(r,), name=f"inproc-rank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start

    if failures:
        # Prefer the root cause over secondary fallout; chain the rest.
        raise_root_cause(failures)
    return InprocResult(return_values=results, wall_seconds=elapsed)
