"""MPI-like message-passing runtime (simulated-time and wall-clock)."""

from repro.mpi.communicator import (
    Communicator,
    MessageContext,
    concat_op,
    max_op,
    min_op,
    sum_op,
)
from repro.mpi.datatypes import VectorDatatype, bsq_row_slab_type, pack, unpack
from repro.mpi.inproc import InprocContext, InprocResult, run_inproc

__all__ = [
    "Communicator",
    "InprocContext",
    "InprocResult",
    "MessageContext",
    "VectorDatatype",
    "bsq_row_slab_type",
    "concat_op",
    "max_op",
    "min_op",
    "pack",
    "run_inproc",
    "sum_op",
    "unpack",
]
