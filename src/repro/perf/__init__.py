"""Performance analysis: phase breakdowns, imbalance, scaling, reports."""

from repro.perf.imbalance import ImbalanceScores, imbalance, imbalance_of_run
from repro.perf.report import format_grid, format_table
from repro.perf.speedup import (
    ScalingCurve,
    amdahl_serial_fraction,
    efficiencies,
    speedups,
)
from repro.perf.timers import PhaseBreakdown, breakdown_of_run

__all__ = [
    "ImbalanceScores",
    "PhaseBreakdown",
    "ScalingCurve",
    "amdahl_serial_fraction",
    "breakdown_of_run",
    "efficiencies",
    "format_grid",
    "format_table",
    "imbalance",
    "imbalance_of_run",
    "speedups",
]
