"""Load-balance metrics (Table 7).

The paper quantifies balance as ``D = R_max / R_min`` over per-processor
run times, reported both over all processors (``D_all``) and excluding
the root (``D_minus``) — the latter isolates worker balance from the
master's extra sequential duties.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.cluster.engine import SimulationResult
from repro.errors import ConfigurationError

__all__ = ["ImbalanceScores", "imbalance", "imbalance_of_run"]


@dataclasses.dataclass(frozen=True)
class ImbalanceScores:
    """``D_all`` and ``D_minus`` (1.0 = perfect balance)."""

    d_all: float
    d_minus: float

    def as_dict(self) -> dict[str, float]:
        return {"d_all": self.d_all, "d_minus": self.d_minus}


def imbalance(run_times: Sequence[float], master_rank: int = 0) -> ImbalanceScores:
    """Compute ``D_all``/``D_minus`` from per-processor run times.

    Args:
        run_times: busy time per rank (compute + communication, no idle).
        master_rank: which rank to exclude for ``D_minus``.

    Raises:
        ConfigurationError: for empty input, non-positive times, or a
            single-processor ``D_minus`` request.
    """
    times = np.asarray(run_times, dtype=float)
    if times.ndim != 1 or times.size == 0:
        raise ConfigurationError("run_times must be a non-empty vector")
    if np.any(times <= 0):
        raise ConfigurationError(
            "run times must be positive (did a rank do no work at all?)"
        )
    if not 0 <= master_rank < times.size:
        raise ConfigurationError(
            f"master rank {master_rank} outside [0, {times.size})"
        )
    d_all = float(times.max() / times.min())
    if times.size < 2:
        d_minus = 1.0
    else:
        workers = np.delete(times, master_rank)
        d_minus = float(workers.max() / workers.min())
    return ImbalanceScores(d_all=d_all, d_minus=d_minus)


def imbalance_of_run(result: SimulationResult) -> ImbalanceScores:
    """Table 7 scores straight from a simulation result."""
    return imbalance(result.busy_times(), result.master_rank)
