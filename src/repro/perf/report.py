"""Paper-style ASCII table rendering.

The experiment drivers print their results in the same row/column
layout as the paper's tables, so a side-by-side comparison with the
published numbers is a visual diff.  No external dependencies — plain
monospace tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table", "format_grid"]


def _cell(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render a monospace table with a ruled header.

    Args:
        headers: column titles.
        rows: row cells (numbers formatted to ``precision``).
        title: optional caption printed above the table.
    """
    if not headers:
        raise ConfigurationError("need at least one column")
    str_rows = [[_cell(v, precision) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells for {len(headers)} columns"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_grid(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Mapping[tuple[str, str], object],
    title: str | None = None,
    corner: str = "",
    precision: int = 2,
) -> str:
    """Render a labelled 2-D grid (row label × column label → value)."""
    headers = [corner, *col_labels]
    rows = [
        [rl, *(values.get((rl, cl)) for cl in col_labels)]
        for rl in row_labels
    ]
    return format_table(headers, rows, title=title, precision=precision)
