"""Aggregating COM/SEQ/PAR phase times from simulation results.

Table 6's decomposition is taken at the master: its communication
participation (COM), its sequential-only computation (SEQ), and
everything else up to the makespan (PAR — parallel computation plus all
waiting for workers).  By construction COM + SEQ + PAR equals the total
execution time of Table 5.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.engine import SimulationResult
from repro.errors import ConfigurationError

__all__ = ["PhaseBreakdown", "breakdown_of_run"]


@dataclasses.dataclass(frozen=True)
class PhaseBreakdown:
    """The Table 6 triple for one run.

    Attributes:
        com: master's transfer-participation time (s).
        seq: master's sequential computation (s).
        par: remainder of the makespan (parallel compute + idle waits).
        total: the makespan; equals ``com + seq + par`` up to round-off.
    """

    com: float
    seq: float
    par: float

    def __post_init__(self) -> None:
        for name, value in (("com", self.com), ("seq", self.seq), ("par", self.par)):
            if value < 0:
                raise ConfigurationError(f"{name} time cannot be negative: {value}")

    @property
    def total(self) -> float:
        return self.com + self.seq + self.par

    def as_dict(self) -> dict[str, float]:
        return {"com": self.com, "seq": self.seq, "par": self.par, "total": self.total}


def breakdown_of_run(result: SimulationResult) -> PhaseBreakdown:
    """Extract the Table 6 triple from a simulation result.

    The master's ledger gives COM and SEQ directly; PAR absorbs the
    remainder of the makespan, which includes any trailing wait between
    the master's last event and the slowest rank's finish (the paper's
    PAR likewise "includes the times in which the workers remain
    idle").
    """
    ledger = result.ledgers[result.master_rank]
    com = ledger.com
    seq = ledger.seq
    par = max(result.makespan - com - seq, 0.0)
    return PhaseBreakdown(com=com, seq=seq, par=par)
