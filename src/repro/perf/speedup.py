"""Speedup and efficiency analysis (Table 8 / Figure 2).

Standard strong-scaling quantities over a processor-count sweep, plus
an Amdahl fit that extracts the serial fraction limiting each
algorithm — the paper's explanation for PCT scaling worst ("the high
number of sequential computations involved in Hetero-PCT").
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.types import FloatArray

__all__ = ["ScalingCurve", "speedups", "efficiencies", "amdahl_serial_fraction"]


def speedups(times: Sequence[float], baseline: float | None = None) -> FloatArray:
    """``S(p) = T(1) / T(p)``; baseline defaults to the first entry."""
    arr = np.asarray(times, dtype=float)
    if arr.size == 0 or np.any(arr <= 0):
        raise ConfigurationError("times must be non-empty and positive")
    t1 = arr[0] if baseline is None else float(baseline)
    if t1 <= 0:
        raise ConfigurationError("baseline time must be positive")
    return t1 / arr


def efficiencies(
    times: Sequence[float],
    cpus: Sequence[int],
    baseline: float | None = None,
) -> FloatArray:
    """``E(p) = S(p) / p``."""
    s = speedups(times, baseline)
    p = np.asarray(cpus, dtype=float)
    if p.shape != s.shape or np.any(p <= 0):
        raise ConfigurationError("cpus must match times and be positive")
    return s / p


def amdahl_serial_fraction(
    times: Sequence[float], cpus: Sequence[int]
) -> float:
    """Least-squares fit of the serial fraction ``f`` in Amdahl's law.

    ``T(p) = T(1)·(f + (1−f)/p)``, least-squares over the sweep; the
    first sample must be the single-processor baseline.  Returns ``f``
    clipped to [0, 1].
    """
    arr = np.asarray(times, dtype=float)
    p = np.asarray(cpus, dtype=float)
    if arr.shape != p.shape or arr.size < 2:
        raise ConfigurationError("need >= 2 matching (time, cpu) samples")
    if np.any(arr <= 0) or np.any(p <= 0):
        raise ConfigurationError("times and cpus must be positive")
    if p[0] != 1:
        raise ConfigurationError("the first sample must be the P=1 baseline")
    # Model: T(p)/T(1) = f·(1 − 1/p) + 1/p  →  linear in f.
    x = 1.0 - 1.0 / p
    rhs = arr / arr[0] - 1.0 / p
    denom = float(x @ x)
    if denom <= 0:
        return 0.0
    return float(np.clip((x @ rhs) / denom, 0.0, 1.0))


@dataclasses.dataclass(frozen=True)
class ScalingCurve:
    """One algorithm's strong-scaling sweep.

    Attributes:
        algorithm: name.
        cpus: processor counts (ascending, first is the baseline).
        times: execution time at each count.
    """

    algorithm: str
    cpus: tuple[int, ...]
    times: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.cpus) != len(self.times) or not self.cpus:
            raise ConfigurationError("cpus and times must align and be non-empty")
        if list(self.cpus) != sorted(self.cpus):
            raise ConfigurationError("cpus must be ascending")

    @property
    def speedups(self) -> FloatArray:
        return speedups(self.times)

    @property
    def efficiencies(self) -> FloatArray:
        return efficiencies(self.times, self.cpus)

    @property
    def serial_fraction(self) -> float:
        return amdahl_serial_fraction(self.times, self.cpus)
