"""Scoring unsupervised classifications against ground truth.

The paper's classifiers are unsupervised: they produce clusters keyed
to extracted endmembers, not to USGS class names.  Scoring against the
reference map therefore needs the standard cluster-to-class assignment
step: each predicted cluster is mapped to the ground-truth class it
overlaps most (majority mapping), after which per-class and overall
accuracies are ordinary supervised scores.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np

from repro.errors import DataError, ShapeError
from repro.hsi.groundtruth import UNLABELLED
from repro.hsi.metrics import overall_accuracy, per_class_accuracy
from repro.types import FloatArray, IntArray

__all__ = ["majority_mapping", "apply_mapping", "ClassificationScore", "score_classification"]


def majority_mapping(
    truth: IntArray, predicted: IntArray, n_true_classes: int
) -> IntArray:
    """Map each predicted cluster to its majority ground-truth class.

    Clusters that never touch a labelled pixel map to class 0 (they
    only matter if some labelled pixel lands there, which then scores
    as an error — a conservative choice).

    Returns:
        ``(n_clusters,)`` mapping array.
    """
    t = np.asarray(truth).ravel()
    p = np.asarray(predicted).ravel()
    if t.shape != p.shape:
        raise ShapeError(f"label shapes differ: {t.shape} vs {p.shape}")
    if p.min(initial=0) < 0:
        raise DataError("predicted labels must be >= 0")
    n_clusters = int(p.max()) + 1 if p.size else 0
    if n_clusters == 0:
        raise DataError("no predictions to map")
    mapping = np.zeros(n_clusters, dtype=np.int64)
    labelled = t != UNLABELLED
    for cluster in range(n_clusters):
        mask = (p == cluster) & labelled
        if mask.any():
            mapping[cluster] = int(
                np.bincount(t[mask], minlength=n_true_classes).argmax()
            )
    return mapping


def apply_mapping(predicted: IntArray, mapping: IntArray) -> IntArray:
    """Relabel cluster ids through a majority mapping."""
    p = np.asarray(predicted)
    m = np.asarray(mapping)
    if p.max(initial=0) >= m.shape[0]:
        raise DataError(
            f"mapping covers {m.shape[0]} clusters but prediction uses "
            f"label {int(p.max())}"
        )
    return m[p]


@dataclasses.dataclass(frozen=True)
class ClassificationScore:
    """Accuracy summary in the paper's Table 4 format.

    Attributes:
        per_class: producer's accuracy per ground-truth class (percent;
            NaN for classes absent from the reference map).
        overall: overall accuracy over labelled pixels (percent).
        class_names: row labels, aligned with ``per_class``.
    """

    per_class: FloatArray
    overall: float
    class_names: tuple[str, ...]

    def as_dict(self) -> Mapping[str, float]:
        out = {name: float(v) for name, v in zip(self.class_names, self.per_class)}
        out["Overall"] = self.overall
        return out


def score_classification(
    truth: IntArray,
    predicted_clusters: IntArray,
    class_names: list[str] | tuple[str, ...],
) -> ClassificationScore:
    """Majority-map predicted clusters onto truth classes and score.

    Args:
        truth: ``(rows, cols)`` reference labels (:data:`UNLABELLED`
            for background).
        predicted_clusters: same-shape raw cluster labels.
        class_names: names of the truth classes, index-aligned.
    """
    n_classes = len(class_names)
    if n_classes == 0:
        raise DataError("need at least one class name")
    mapping = majority_mapping(truth, predicted_clusters, n_classes)
    mapped = apply_mapping(predicted_clusters, mapping)
    return ClassificationScore(
        per_class=per_class_accuracy(truth, mapped, n_classes),
        overall=overall_accuracy(truth, mapped, n_classes),
        class_names=tuple(class_names),
    )
