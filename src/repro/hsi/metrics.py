"""Spectral similarity metrics and accuracy scoring.

The paper's accuracy results are all phrased in terms of the spectral
angle distance (SAD, eq. 1) — between detected targets and known ground
targets (Table 3) and, via nearest-signature labelling, per-class
classification accuracy against the USGS dust/debris map (Table 4).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import DataError, ShapeError
from repro.types import FloatArray, IntArray

__all__ = [
    "sad",
    "sad_pairwise",
    "sad_to_references",
    "spectral_information_divergence",
    "rmse",
    "confusion_matrix",
    "per_class_accuracy",
    "overall_accuracy",
    "match_targets",
]

_EPS = 1e-12


def _as_spectra(a: FloatArray, name: str) -> FloatArray:
    arr = np.asarray(a, dtype=float)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 1-D or 2-D, got shape {arr.shape}")
    return arr


def sad(x: FloatArray, y: FloatArray) -> float:
    """Spectral angle distance between two signatures, in radians.

    ``SAD(x, y) = arccos( x·y / (‖x‖‖y‖) )`` — eq. (1) of the paper.
    Zero means spectrally identical up to scale; insensitivity to overall
    brightness is why SAD is the standard hyperspectral similarity.
    """
    xv = np.asarray(x, dtype=float).ravel()
    yv = np.asarray(y, dtype=float).ravel()
    if xv.shape != yv.shape:
        raise ShapeError(f"signature shapes differ: {xv.shape} vs {yv.shape}")
    denom = float(np.linalg.norm(xv) * np.linalg.norm(yv))
    if denom < _EPS:
        raise DataError("SAD undefined for a zero signature")
    cosine = float(np.dot(xv, yv)) / denom
    return float(np.arccos(np.clip(cosine, -1.0, 1.0)))


def sad_pairwise(spectra: FloatArray) -> FloatArray:
    """All-pairs SAD matrix for rows of ``spectra`` → ``(k, k)``, zeros on
    the diagonal.  Vectorized: one Gram matrix, no Python loops."""
    mat = _as_spectra(spectra, "spectra")
    norms = np.linalg.norm(mat, axis=1)
    if np.any(norms < _EPS):
        raise DataError("SAD undefined for zero signatures in the set")
    gram = (mat @ mat.T) / np.outer(norms, norms)
    np.clip(gram, -1.0, 1.0, out=gram)
    out = np.arccos(gram)
    np.fill_diagonal(out, 0.0)
    return out


def sad_to_references(pixels: FloatArray, references: FloatArray) -> FloatArray:
    """SAD from each pixel to each reference → ``(n_pixels, n_refs)``.

    ``pixels`` is ``(n, bands)`` (or any leading shape that reshapes to
    it); ``references`` is ``(k, bands)``.  The work-horse of both
    nearest-signature classification steps (Hetero-PCT step 9,
    Hetero-MORPH step 4).
    """
    pix = _as_spectra(pixels, "pixels")
    ref = _as_spectra(references, "references")
    if pix.shape[1] != ref.shape[1]:
        raise ShapeError(
            f"band counts differ: pixels {pix.shape[1]} vs refs {ref.shape[1]}"
        )
    pnorm = np.linalg.norm(pix, axis=1)
    rnorm = np.linalg.norm(ref, axis=1)
    if np.any(rnorm < _EPS):
        raise DataError("SAD undefined for zero reference signatures")
    # Zero pixels (e.g. padded borders) get angle pi/2 to everything.
    safe_pnorm = np.where(pnorm < _EPS, 1.0, pnorm)
    cos = (pix @ ref.T) / np.outer(safe_pnorm, rnorm)
    cos[pnorm < _EPS, :] = 0.0
    np.clip(cos, -1.0, 1.0, out=cos)
    return np.arccos(cos)


def spectral_information_divergence(x: FloatArray, y: FloatArray) -> float:
    """SID: symmetric KL divergence between signatures viewed as
    probability distributions.  A secondary metric offered alongside SAD."""
    xv = np.asarray(x, dtype=float).ravel()
    yv = np.asarray(y, dtype=float).ravel()
    if xv.shape != yv.shape:
        raise ShapeError(f"signature shapes differ: {xv.shape} vs {yv.shape}")
    if np.any(xv < 0) or np.any(yv < 0):
        raise DataError("SID requires non-negative signatures")
    p = xv + _EPS
    q = yv + _EPS
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)) + np.sum(q * np.log(q / p)))


def rmse(x: FloatArray, y: FloatArray) -> float:
    """Root-mean-square error between two equally shaped arrays."""
    xv = np.asarray(x, dtype=float)
    yv = np.asarray(y, dtype=float)
    if xv.shape != yv.shape:
        raise ShapeError(f"shapes differ: {xv.shape} vs {yv.shape}")
    return float(np.sqrt(np.mean((xv - yv) ** 2)))


def confusion_matrix(
    truth: IntArray, predicted: IntArray, n_classes: int
) -> IntArray:
    """``(n_classes, n_classes)`` counts, rows = truth, cols = predicted.

    Entries of ``truth`` outside ``[0, n_classes)`` are ignored (the
    convention for unlabeled background is ``-1``).
    """
    t = np.asarray(truth).ravel()
    p = np.asarray(predicted).ravel()
    if t.shape != p.shape:
        raise ShapeError(f"label shapes differ: {t.shape} vs {p.shape}")
    if n_classes <= 0:
        raise DataError("n_classes must be positive")
    valid = (t >= 0) & (t < n_classes)
    if np.any((p[valid] < 0) | (p[valid] >= n_classes)):
        raise DataError("predicted labels out of range on labelled pixels")
    idx = t[valid] * n_classes + p[valid]
    counts = np.bincount(idx, minlength=n_classes * n_classes)
    return counts.reshape(n_classes, n_classes)


def per_class_accuracy(
    truth: IntArray, predicted: IntArray, n_classes: int
) -> FloatArray:
    """Producer's accuracy per class, in percent; NaN for absent classes."""
    cm = confusion_matrix(truth, predicted, n_classes)
    totals = cm.sum(axis=1).astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        acc = np.where(totals > 0, np.diag(cm) / totals * 100.0, np.nan)
    return acc


def overall_accuracy(truth: IntArray, predicted: IntArray, n_classes: int) -> float:
    """Overall accuracy over labelled pixels, in percent."""
    cm = confusion_matrix(truth, predicted, n_classes)
    total = cm.sum()
    if total == 0:
        raise DataError("no labelled pixels to score")
    return float(np.trace(cm) / total * 100.0)


def match_targets(
    detected: FloatArray,
    ground_truth: Mapping[str, FloatArray] | Sequence[FloatArray],
) -> dict:
    """Score detected target signatures against known ground targets.

    For every ground target, reports the minimum SAD over the detected
    set — exactly the quantity of the paper's Table 3 ("SAD between the
    most similar target pixels detected ... and the known targets").

    Args:
        detected: ``(t, bands)`` detected target signatures.
        ground_truth: mapping of label → signature (or a sequence, which
            gets labels ``"0"``, ``"1"``, ...).

    Returns:
        dict of label → ``{"sad": float, "detected_index": int}``.
    """
    det = _as_spectra(detected, "detected")
    if det.shape[0] == 0:
        raise DataError("no detected targets to match")
    if not isinstance(ground_truth, Mapping):
        ground_truth = {str(i): sig for i, sig in enumerate(ground_truth)}
    results: dict = {}
    for label, signature in ground_truth.items():
        angles = sad_to_references(det, np.asarray(signature, dtype=float))
        best = int(np.argmin(angles[:, 0]))
        results[label] = {"sad": float(angles[best, 0]), "detected_index": best}
    return results
