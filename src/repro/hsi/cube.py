"""The hyperspectral image cube container.

A scene is a stack of images at different wavelengths; each spatial
pixel carries a full spectral signature.  Internally we store the cube
in BIP order — ``(rows, cols, bands)`` — because every algorithm in the
paper operates on whole pixel vectors (hybrid spatial partitioning with
full spectral content per pixel), and BIP makes a pixel's signature
contiguous in memory, which is the cache-friendly layout for
SAD/projection kernels.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import DataError, ShapeError
from repro.types import FloatArray, Interleave, PixelIndex

__all__ = ["HyperspectralImage", "row_slab", "stack_rows"]


class HyperspectralImage:
    """An immutable-shape hyperspectral cube with layout conversions.

    Args:
        data: a 3-D array in the layout given by ``interleave``.
        interleave: how to interpret ``data``'s axes (default BIP).
        wavelengths: optional band-centre wavelengths in µm; if given,
            its length must equal the number of bands.
        copy: force a copy of the input (otherwise a view is kept when
            the input is already BIP, C-contiguous float).

    The underlying buffer is exposed via :attr:`values` as a
    ``(rows, cols, bands)`` float array; mutating it in place is allowed
    (the MORPH algorithm iterates ``F = F ⊕ B``).
    """

    __slots__ = ("_data", "_wavelengths")

    def __init__(
        self,
        data: FloatArray,
        interleave: Interleave | str = Interleave.BIP,
        wavelengths: FloatArray | None = None,
        copy: bool = False,
    ) -> None:
        arr = np.asarray(data)
        if arr.ndim != 3:
            raise ShapeError(f"expected a 3-D cube, got shape {arr.shape}")
        layout = Interleave.parse(interleave)
        if layout is Interleave.BSQ:  # (bands, rows, cols) -> (rows, cols, bands)
            arr = np.moveaxis(arr, 0, 2)
        elif layout is Interleave.BIL:  # (rows, bands, cols) -> (rows, cols, bands)
            arr = np.moveaxis(arr, 1, 2)
        arr = np.ascontiguousarray(arr, dtype=np.float64 if copy else None)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        if copy and arr is data:
            arr = arr.copy()
        if 0 in arr.shape:
            raise ShapeError(f"cube has an empty axis: shape {arr.shape}")
        if wavelengths is not None:
            wavelengths = np.asarray(wavelengths, dtype=float)
            if wavelengths.shape != (arr.shape[2],):
                raise ShapeError(
                    f"wavelengths length {wavelengths.shape} does not match "
                    f"{arr.shape[2]} bands"
                )
        self._data = arr
        self._wavelengths = wavelengths

    # -- basic properties ---------------------------------------------------
    @property
    def values(self) -> FloatArray:
        """The cube as ``(rows, cols, bands)`` (BIP), writable."""
        return self._data

    @property
    def shape(self) -> tuple[int, int, int]:
        """``(rows, cols, bands)``."""
        return self._data.shape  # type: ignore[return-value]

    @property
    def rows(self) -> int:
        return self._data.shape[0]

    @property
    def cols(self) -> int:
        return self._data.shape[1]

    @property
    def bands(self) -> int:
        return self._data.shape[2]

    @property
    def n_pixels(self) -> int:
        return self.rows * self.cols

    @property
    def wavelengths(self) -> FloatArray | None:
        return self._wavelengths

    @property
    def nbytes(self) -> int:
        """Size of the pixel buffer in bytes."""
        return self._data.nbytes

    @property
    def megabits(self) -> float:
        """Size of the pixel buffer in megabits (the Table 2 capacity unit)."""
        return self._data.nbytes * 8.0 / 1e6

    def __repr__(self) -> str:
        return (
            f"HyperspectralImage(rows={self.rows}, cols={self.cols}, "
            f"bands={self.bands}, dtype={self._data.dtype})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperspectralImage):
            return NotImplemented
        return self.shape == other.shape and bool(
            np.array_equal(self._data, other._data)
        )

    __hash__ = None  # type: ignore[assignment]  # mutable contents

    # -- access ---------------------------------------------------------------
    def pixel(self, row: int, col: int) -> FloatArray:
        """The spectral signature at ``(row, col)`` (a view)."""
        return self._data[row, col]

    def pixels_at(self, indices: Sequence[PixelIndex]) -> FloatArray:
        """Gather signatures at spatial ``(row, col)`` positions → ``(k, bands)``."""
        if len(indices) == 0:
            return np.empty((0, self.bands))
        rows, cols = zip(*indices)
        return self._data[np.asarray(rows), np.asarray(cols)]

    def band(self, index: int) -> FloatArray:
        """The 2-D image of one spectral band (a view)."""
        return self._data[:, :, index]

    def band_nearest(self, wavelength_um: float) -> int:
        """Index of the band whose centre is closest to ``wavelength_um``."""
        if self._wavelengths is None:
            raise DataError("cube has no wavelength grid attached")
        return int(np.argmin(np.abs(self._wavelengths - wavelength_um)))

    def flatten_pixels(self) -> FloatArray:
        """All signatures as ``(rows*cols, bands)`` (a view when possible)."""
        return self._data.reshape(self.n_pixels, self.bands)

    def iter_pixels(self) -> Iterator[tuple[PixelIndex, FloatArray]]:
        """Yield ``((row, col), signature)`` in row-major order."""
        for r in range(self.rows):
            for c in range(self.cols):
                yield (r, c), self._data[r, c]

    # -- layout conversions -----------------------------------------------------
    def as_array(self, interleave: Interleave | str = Interleave.BIP) -> FloatArray:
        """Export the cube in the requested interleave (copy unless BIP)."""
        layout = Interleave.parse(interleave)
        if layout is Interleave.BIP:
            return self._data
        if layout is Interleave.BSQ:
            return np.ascontiguousarray(np.moveaxis(self._data, 2, 0))
        return np.ascontiguousarray(np.moveaxis(self._data, 2, 1))  # BIL

    # -- slicing ---------------------------------------------------------------
    def row_block(self, start: int, stop: int) -> "HyperspectralImage":
        """The sub-cube of rows ``[start, stop)`` — the unit of the paper's
        hybrid spatial-domain partitioning (full spectral content kept).

        Returns a view-backed image; mutations propagate to the parent.
        """
        if not 0 <= start < stop <= self.rows:
            raise ShapeError(
                f"row block [{start}, {stop}) out of range for {self.rows} rows"
            )
        return HyperspectralImage(self._data[start:stop], wavelengths=self._wavelengths)

    def copy(self) -> "HyperspectralImage":
        return HyperspectralImage(self._data.copy(), wavelengths=self._wavelengths)


def row_slab(image: HyperspectralImage, start: int, stop: int) -> HyperspectralImage:
    """Free-function alias of :meth:`HyperspectralImage.row_block`."""
    return image.row_block(start, stop)


def stack_rows(blocks: Sequence[HyperspectralImage]) -> HyperspectralImage:
    """Reassemble row blocks (in order) into one cube.

    The inverse of partition-by-rows: all blocks must agree on cols/bands.
    """
    if not blocks:
        raise DataError("cannot stack zero blocks")
    cols, bands = blocks[0].cols, blocks[0].bands
    for blk in blocks[1:]:
        if (blk.cols, blk.bands) != (cols, bands):
            raise ShapeError(
                f"block shape ({blk.cols}, {blk.bands}) does not match "
                f"({cols}, {bands})"
            )
    data = np.concatenate([blk.values for blk in blocks], axis=0)
    return HyperspectralImage(data, wavelengths=blocks[0].wavelengths)
