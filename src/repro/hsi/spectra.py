"""Synthetic spectral library for AVIRIS-like scenes.

The paper's experiments use an AVIRIS scene of the World Trade Center
with USGS ground truth: dust/debris classes (concrete, cement, dust
variants, gypsum wall board) and thermal hot spots at 700–1300 °F.  The
real spectra are not redistributable, so this module synthesizes
physically-motivated stand-ins:

* **Reflective materials** are modelled as a smooth continuum (linear +
  curvature term) minus a handful of Gaussian absorption features at
  material-characteristic wavelengths (e.g. the 2.2 µm cement
  carbonate/hydroxyl feature, 1.4/1.9 µm water bands in gypsum, the
  chlorophyll red edge for vegetation).

* **Thermal hot spots** add Planck blackbody emission, which for
  644–978 K (700–1300 °F) rises steeply across the SWIR — exactly why
  the WTC fires are visible to AVIRIS at 2.5 µm.

What matters for reproducing Tables 3–4 is not spectro-chemical realism
but that the library members are *mutually distinguishable under the
spectral angle* to the same rough degree the USGS materials are; the
test-suite pins that property.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import DataError
from repro.types import FloatArray

__all__ = [
    "AVIRIS_NUM_BANDS",
    "AVIRIS_RANGE_UM",
    "aviris_wavelengths",
    "gaussian_absorption",
    "continuum",
    "reflectance_signature",
    "blackbody_radiance",
    "thermal_signature",
    "fahrenheit_to_kelvin",
    "Signature",
    "SpectralLibrary",
    "wtc_material_params",
    "build_wtc_library",
]

#: Number of AVIRIS spectral channels.
AVIRIS_NUM_BANDS = 224
#: AVIRIS spectral coverage in micrometres.
AVIRIS_RANGE_UM = (0.4, 2.5)

# Planck constants (SI).
_H = 6.62607015e-34  # J s
_C = 2.99792458e8  # m / s
_KB = 1.380649e-23  # J / K


def aviris_wavelengths(
    n_bands: int = AVIRIS_NUM_BANDS,
    start_um: float = AVIRIS_RANGE_UM[0],
    stop_um: float = AVIRIS_RANGE_UM[1],
) -> FloatArray:
    """Return the band-centre wavelength grid in micrometres.

    AVIRIS samples 0.4–2.5 µm with 224 roughly evenly spaced channels;
    a uniform grid is an adequate stand-in.

    Raises:
        DataError: if ``n_bands < 2`` or the range is empty.
    """
    if n_bands < 2:
        raise DataError(f"need at least 2 bands, got {n_bands}")
    if not stop_um > start_um > 0:
        raise DataError(f"invalid wavelength range ({start_um}, {stop_um})")
    return np.linspace(start_um, stop_um, n_bands)


def gaussian_absorption(
    wavelengths: FloatArray, center_um: float, width_um: float, depth: float
) -> FloatArray:
    """A Gaussian absorption feature: ``depth * exp(-(λ-c)²/2σ²)``.

    Positive ``depth`` means reflectance is *reduced* around
    ``center_um`` when the result is subtracted from a continuum.
    """
    if width_um <= 0:
        raise DataError(f"absorption width must be positive, got {width_um}")
    x = (np.asarray(wavelengths, dtype=float) - center_um) / width_um
    return depth * np.exp(-0.5 * x * x)


def continuum(
    wavelengths: FloatArray, base: float, slope: float, curvature: float = 0.0
) -> FloatArray:
    """Smooth reflectance continuum ``base + slope·(λ-λ₀) + curvature·(λ-λ₀)²``.

    ``λ₀`` is the first wavelength, so ``base`` is the reflectance at the
    blue end of the spectrum.
    """
    wl = np.asarray(wavelengths, dtype=float)
    d = wl - wl[0]
    return base + slope * d + curvature * d * d


def reflectance_signature(
    wavelengths: FloatArray,
    base: float,
    slope: float,
    features: Sequence[tuple[float, float, float]] = (),
    curvature: float = 0.0,
) -> FloatArray:
    """Build a reflectance spectrum from a continuum and absorption features.

    Args:
        wavelengths: band centres in µm.
        base, slope, curvature: continuum parameters (see :func:`continuum`).
        features: iterable of ``(center_um, width_um, depth)`` Gaussian
            absorptions subtracted from the continuum.

    Returns:
        Reflectance in ``[0, 1]`` (clipped), shape ``(bands,)``.
    """
    spec = continuum(wavelengths, base, slope, curvature)
    for center_um, width_um, depth in features:
        spec = spec - gaussian_absorption(wavelengths, center_um, width_um, depth)
    return np.clip(spec, 0.0, 1.0)


def fahrenheit_to_kelvin(temp_f: float) -> float:
    """Convert Fahrenheit to Kelvin (the paper quotes hot spots in °F)."""
    return (temp_f - 32.0) * 5.0 / 9.0 + 273.15


def blackbody_radiance(wavelengths_um: FloatArray, temperature_k: float) -> FloatArray:
    """Planck spectral radiance ``B(λ, T)`` in W·m⁻²·sr⁻¹·µm⁻¹.

    Args:
        wavelengths_um: wavelengths in micrometres.
        temperature_k: blackbody temperature in Kelvin (must be > 0).
    """
    if temperature_k <= 0:
        raise DataError(f"temperature must be positive, got {temperature_k} K")
    lam = np.asarray(wavelengths_um, dtype=float) * 1e-6  # metres
    # 2hc² / λ⁵, converted from per-metre to per-micrometre (×1e-6).
    numerator = 2.0 * _H * _C * _C / lam**5 * 1e-6
    expo = _H * _C / (lam * _KB * temperature_k)
    # expm1 keeps precision for the long-wavelength (small-exponent) limit.
    return numerator / np.expm1(expo)


#: Candidate centre wavelengths (µm) for flame emission features —
#: chosen in spectrally *quiet* zones: clear of every material
#: absorption in :func:`wtc_material_params` and of the 1.38/1.88 µm
#: atmospheric water bands.  A flame feature that lands on a material's
#: absorption band shares that material's 1-D spectral direction, and
#: subspace-projection detectors can no longer separate the fire from
#: the material.
FLAME_EMISSION_CENTERS_UM: tuple[float, ...] = (
    0.555, 0.595, 1.485, 1.525, 1.565, 2.42, 2.46,
)


def flame_emission_center_um(temperature_k: float) -> float:
    """Centre wavelength of the flame's emission feature, by temperature.

    Real fires superimpose combustion emission features (alkali lines,
    hot CO₂/H₂O bands) on the grey-body continuum, and the dominant
    feature shifts with combustion conditions.  We model one Gaussian
    feature per fire, binning temperature over the paper's 644–978 K
    hot-spot range onto the quiet-zone centre list — each hot spot gets
    a spectral direction no other scene component shares, which is what
    lets subspace-projection methods separate spots whose grey-body
    tails are nearly collinear.
    """
    lo, hi = 620.0, 1000.0
    frac = float(np.clip((temperature_k - lo) / (hi - lo), 0.0, 1.0))
    idx = min(
        int(frac * len(FLAME_EMISSION_CENTERS_UM)),
        len(FLAME_EMISSION_CENTERS_UM) - 1,
    )
    return FLAME_EMISSION_CENTERS_UM[idx]


def thermal_signature(
    wavelengths: FloatArray,
    temperature_f: float,
    ambient: FloatArray | None = None,
    emissivity: float = 0.95,
    ambient_weight: float = 0.15,
    emission_strength: float = 0.25,
    emission_center_um: float | None = None,
) -> FloatArray:
    """At-sensor signature of a fire pixel: emitted radiance + dim ambient.

    The emitted term is Planck radiance normalized to unit peak over the
    instrument's band set, so signatures of different temperatures differ
    by *shape* (the Wien shift across the SWIR), plus a
    temperature-indexed flame emission feature (see
    :func:`flame_emission_center_um`), which is what the spectral angle
    metric responds to.

    Args:
        wavelengths: band centres in µm.
        temperature_f: hot-spot temperature in °F (paper: 700–1300 °F).
        ambient: optional background reflectance mixed in with weight
            ``ambient_weight`` (e.g. the rubble the fire burns within).
        emissivity: grey-body scaling of the emitted term.
        ambient_weight: fraction of the ambient signature blended in.
        emission_strength: amplitude of the flame emission feature.
        emission_center_um: explicit feature centre; defaults to the
            temperature-binned :func:`flame_emission_center_um` (pass
            explicitly when several fires share a temperature bin).
    """
    temp_k = fahrenheit_to_kelvin(temperature_f)
    radiance = blackbody_radiance(wavelengths, temp_k)
    peak = float(radiance.max())
    if peak <= 0:
        raise DataError("blackbody radiance vanished over the band set")
    emitted = emissivity * radiance / peak
    if emission_strength > 0:
        center = (
            flame_emission_center_um(temp_k)
            if emission_center_um is None
            else emission_center_um
        )
        emitted = emitted + gaussian_absorption(
            wavelengths, center, 0.035, -emission_strength
        )
    if ambient is not None:
        ambient = np.asarray(ambient, dtype=float)
        if ambient.shape != np.shape(wavelengths):
            raise DataError(
                f"ambient shape {ambient.shape} != wavelength grid "
                f"{np.shape(wavelengths)}"
            )
        emitted = (1.0 - ambient_weight) * emitted + ambient_weight * ambient
    return emitted


@dataclasses.dataclass(frozen=True)
class Signature:
    """A named spectrum.

    Attributes:
        name: unique identifier within a library (e.g. ``"dust_wtc01_15"``).
        values: spectrum sampled on the library's wavelength grid.
        kind: ``"reflective"`` or ``"thermal"`` — scene builders place
            thermal members as point targets rather than area classes.
    """

    name: str
    values: FloatArray
    kind: str = "reflective"

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1:
            raise DataError(f"signature {self.name!r} must be 1-D")
        if not np.all(np.isfinite(values)):
            raise DataError(f"signature {self.name!r} contains non-finite values")
        object.__setattr__(self, "values", values)

    @property
    def n_bands(self) -> int:
        return int(self.values.shape[0])


class SpectralLibrary:
    """An ordered collection of named signatures on a common wavelength grid.

    Supports mapping-style access by name, iteration in insertion order,
    and bulk export to a ``(n_signatures, bands)`` matrix for mixing.
    """

    def __init__(self, wavelengths: FloatArray) -> None:
        self._wavelengths = np.asarray(wavelengths, dtype=float)
        if self._wavelengths.ndim != 1 or self._wavelengths.size < 2:
            raise DataError("wavelength grid must be 1-D with >= 2 samples")
        if np.any(np.diff(self._wavelengths) <= 0):
            raise DataError("wavelength grid must be strictly increasing")
        self._members: Dict[str, Signature] = {}

    # -- mapping protocol -------------------------------------------------
    @property
    def wavelengths(self) -> FloatArray:
        """Band-centre wavelengths in µm (read-only view)."""
        view = self._wavelengths.view()
        view.flags.writeable = False
        return view

    @property
    def n_bands(self) -> int:
        return int(self._wavelengths.size)

    @property
    def names(self) -> list[str]:
        """Signature names in insertion order."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: object) -> bool:
        return name in self._members

    def __getitem__(self, name: str) -> Signature:
        try:
            return self._members[name]
        except KeyError:
            raise KeyError(
                f"no signature {name!r}; library has {sorted(self._members)}"
            ) from None

    def __iter__(self) -> Iterator[Signature]:
        return iter(self._members.values())

    # -- construction ------------------------------------------------------
    def add(self, signature: Signature) -> None:
        """Add a signature; its length must match the grid and its name be new."""
        if signature.n_bands != self.n_bands:
            raise DataError(
                f"signature {signature.name!r} has {signature.n_bands} bands, "
                f"library grid has {self.n_bands}"
            )
        if signature.name in self._members:
            raise DataError(f"duplicate signature name {signature.name!r}")
        self._members[signature.name] = signature

    def add_reflectance(
        self,
        name: str,
        base: float,
        slope: float,
        features: Sequence[tuple[float, float, float]] = (),
        curvature: float = 0.0,
    ) -> Signature:
        """Convenience: build with :func:`reflectance_signature` and add."""
        sig = Signature(
            name,
            reflectance_signature(self._wavelengths, base, slope, features, curvature),
            kind="reflective",
        )
        self.add(sig)
        return sig

    def add_thermal(
        self,
        name: str,
        temperature_f: float,
        ambient_name: str | None = None,
        **kwargs: float,
    ) -> Signature:
        """Convenience: build with :func:`thermal_signature` and add."""
        ambient = self._members[ambient_name].values if ambient_name else None
        sig = Signature(
            name,
            thermal_signature(self._wavelengths, temperature_f, ambient, **kwargs),
            kind="thermal",
        )
        self.add(sig)
        return sig

    # -- persistence -----------------------------------------------------------
    def save(self, path: "str | os.PathLike") -> None:
        """Write the library to an ``.npz`` file (wavelengths, spectra,
        names, kinds)."""
        np.savez_compressed(
            path,
            wavelengths=self._wavelengths,
            spectra=self.to_matrix(),
            names=np.array(self.names, dtype=object),
            kinds=np.array([s.kind for s in self], dtype=object),
        )

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "SpectralLibrary":
        """Read a library written by :meth:`save`."""
        with np.load(path, allow_pickle=True) as data:
            try:
                lib = cls(data["wavelengths"])
                spectra = data["spectra"]
                names = [str(n) for n in data["names"]]
                kinds = [str(k) for k in data["kinds"]]
            except KeyError as exc:
                raise DataError(f"{path}: not a spectral library file: {exc}")
        for name, kind, values in zip(names, kinds, spectra):
            lib.add(Signature(name, values, kind=kind))
        return lib

    # -- export -------------------------------------------------------------
    def subset(self, names: Iterable[str]) -> "SpectralLibrary":
        """A new library holding only ``names`` (order as given)."""
        out = SpectralLibrary(self._wavelengths)
        for name in names:
            out.add(self[name])
        return out

    def to_matrix(self, names: Sequence[str] | None = None) -> FloatArray:
        """Stack signatures into a ``(k, bands)`` matrix.

        Args:
            names: subset/order to export; defaults to all, insertion order.
        """
        use = list(names) if names is not None else self.names
        if not use:
            raise DataError("cannot export an empty signature matrix")
        return np.stack([self[name].values for name in use])

    def reflective_names(self) -> list[str]:
        return [s.name for s in self if s.kind == "reflective"]

    def thermal_names(self) -> list[str]:
        return [s.name for s in self if s.kind == "thermal"]


def wtc_material_params() -> Mapping[str, dict]:
    """Continuum/feature parameters for the WTC dust-and-debris materials.

    Keys are the class names used throughout the experiments, mirroring
    the USGS sample labels of the paper's Table 4 plus the background
    materials needed to paint a lower-Manhattan-like scene.
    """
    return {
        # -- Table 4 dust/debris classes -----------------------------------
        # Feature depths are strong enough that the seven classes are
        # mutually separable under full-spectral SAD (min pairwise angle
        # ≈ 0.1 rad) — comparable to the USGS laboratory materials,
        # whose diagnostic bands are well resolved at AVIRIS SNR.
        "concrete_wtc01_37b": dict(
            base=0.28, slope=0.055, curvature=-0.012,
            features=[(1.42, 0.05, 0.10), (1.93, 0.06, 0.12), (2.31, 0.04, 0.12)],
        ),
        "concrete_wtc01_37am": dict(
            base=0.22, slope=0.085, curvature=-0.020,
            features=[(0.78, 0.05, 0.07), (1.10, 0.06, 0.10), (2.34, 0.05, 0.14)],
        ),
        "cement_wtc01_37a": dict(
            base=0.32, slope=0.035, curvature=-0.008,
            features=[(1.45, 0.06, 0.10), (1.95, 0.07, 0.14), (2.20, 0.05, 0.16)],
        ),
        "dust_wtc01_15": dict(
            base=0.18, slope=0.090, curvature=-0.020,
            features=[(0.90, 0.10, 0.08), (1.62, 0.05, 0.09), (2.21, 0.04, 0.09)],
        ),
        "dust_wtc01_28": dict(
            base=0.21, slope=0.075, curvature=-0.016,
            features=[(1.02, 0.08, 0.09), (1.25, 0.04, 0.08), (2.26, 0.05, 0.12)],
        ),
        "dust_wtc01_36": dict(
            base=0.16, slope=0.100, curvature=-0.022,
            features=[(0.66, 0.05, 0.06), (1.70, 0.06, 0.12), (2.10, 0.04, 0.09)],
        ),
        "gypsum_wallboard": dict(
            base=0.45, slope=0.030, curvature=-0.010,
            # Gypsum's diagnostic hydration bands at 1.4/1.75/1.9/2.2 µm.
            features=[
                (1.40, 0.04, 0.18), (1.75, 0.04, 0.08),
                (1.94, 0.05, 0.25), (2.21, 0.04, 0.10),
            ],
        ),
        # -- background materials -------------------------------------------
        "vegetation": dict(
            base=0.05, slope=0.150, curvature=-0.055,
            # Chlorophyll well + liquid-water bands; red edge emerges from
            # the steep slope against the 0.68 µm absorption.
            features=[(0.68, 0.05, 0.06), (0.98, 0.05, 0.05),
                      (1.20, 0.06, 0.06), (1.45, 0.08, 0.14), (1.94, 0.09, 0.18)],
        ),
        "water": dict(
            base=0.09, slope=-0.035, curvature=0.004,
            features=[(0.75, 0.15, 0.02)],
        ),
        "asphalt": dict(
            base=0.07, slope=0.025, curvature=-0.004,
            features=[(1.70, 0.10, 0.01), (2.30, 0.08, 0.02)],
        ),
        "smoke_plume": dict(
            # Strong blue/short-wavelength scattering, per the paper's
            # remark that smoke appears bright in the 655 nm channel.
            base=0.55, slope=-0.190, curvature=0.045,
            features=[(1.38, 0.05, 0.03), (1.88, 0.05, 0.04)],
        ),
        "soil": dict(
            base=0.12, slope=0.080, curvature=-0.018,
            features=[(0.87, 0.09, 0.04), (2.21, 0.05, 0.05)],
        ),
    }


#: Hot-spot labels and temperatures (°F).  The paper names spots 'A'–'G'
#: and quotes the range 700 °F (spot 'F') to 1300 °F (spot 'G').
WTC_HOTSPOT_TEMPS_F: Mapping[str, float] = {
    "A": 1020.0,
    "B": 900.0,
    "C": 1100.0,
    "D": 830.0,
    "E": 760.0,
    "F": 700.0,
    "G": 1300.0,
}


#: Per-spot ambient rubble: each fire burns within different debris, so
#: each hot-spot signature blends a different reflective component —
#: this is what makes the seven spots mutually separable under OSP
#: (pure blackbody tails at neighbouring temperatures are near-collinear).
WTC_HOTSPOT_AMBIENTS: Mapping[str, str] = {
    "A": "concrete_wtc01_37b",
    "B": "cement_wtc01_37a",
    "C": "gypsum_wallboard",
    "D": "concrete_wtc01_37am",
    "E": "dust_wtc01_28",
    "F": "dust_wtc01_15",
    "G": "asphalt",
}


def build_wtc_library(n_bands: int = AVIRIS_NUM_BANDS) -> SpectralLibrary:
    """Build the full WTC spectral library (materials + hot spots A–G).

    Thermal members are named ``hotspot_<letter>`` and flagged
    ``kind="thermal"``; everything else is reflective.
    """
    lib = SpectralLibrary(aviris_wavelengths(n_bands))
    for name, params in wtc_material_params().items():
        lib.add_reflectance(name, **params)
    # One quiet-zone emission centre per spot, assigned by temperature
    # rank so no two fires share a spectral direction.
    by_temp = sorted(WTC_HOTSPOT_TEMPS_F, key=WTC_HOTSPOT_TEMPS_F.get)
    centers = {
        label: FLAME_EMISSION_CENTERS_UM[i % len(FLAME_EMISSION_CENTERS_UM)]
        for i, label in enumerate(by_temp)
    }
    for label, temp_f in WTC_HOTSPOT_TEMPS_F.items():
        lib.add_thermal(
            f"hotspot_{label.lower()}",
            temp_f,
            ambient_name=WTC_HOTSPOT_AMBIENTS[label],
            ambient_weight=0.35,
            emission_center_um=centers[label],
        )
    return lib
