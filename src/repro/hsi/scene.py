"""Procedural generator for a WTC-like hyperspectral scene.

The real experiment data — the AVIRIS flight line over lower Manhattan
of 2001-09-16 (2133×512 pixels × 224 bands) — cannot be shipped, so we
synthesize a scene with the same *structure*: rivers flanking a street
grid of concrete/cement/asphalt city blocks, a vegetated park, a
dust/debris plume centred on the WTC site with the USGS debris classes,
a smoke plume drifting south, and seven thermal hot spots ('A'–'G',
700–1300 °F) at known positions.  Every pixel is a linear mixture of
library signatures plus AVIRIS-shaped sensor noise, and the generator
returns exact ground truth for both experiments (Tables 3 and 4).

The default size is laptop-scale; pass the paper's full 2133×512×224 to
:func:`make_wtc_scene` if you have the memory (~2 GB as float64).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.hsi.cube import HyperspectralImage
from repro.hsi.groundtruth import UNLABELLED, SceneGroundTruth, TargetSpot
from repro.hsi.noise import NoiseModel
from repro.hsi.spectra import (
    WTC_HOTSPOT_TEMPS_F,
    SpectralLibrary,
    build_wtc_library,
)
from repro.types import FloatArray, IntArray

__all__ = ["SceneConfig", "WTCScene", "make_wtc_scene", "DEBRIS_CLASS_NAMES"]

#: The seven USGS dust/debris classes of Table 4, in the paper's order.
DEBRIS_CLASS_NAMES: tuple[str, ...] = (
    "concrete_wtc01_37b",
    "concrete_wtc01_37am",
    "cement_wtc01_37a",
    "dust_wtc01_15",
    "dust_wtc01_28",
    "dust_wtc01_36",
    "gypsum_wallboard",
)

_BACKGROUND_NAMES = ("vegetation", "water", "asphalt", "smoke_plume", "soil")


@dataclasses.dataclass(frozen=True)
class SceneConfig:
    """Parameters of the synthetic WTC scene.

    Attributes:
        rows, cols: spatial dimensions (paper: 2133 × 512).
        bands: spectral channels (paper/AVIRIS: 224).
        seed: RNG seed controlling layout noise and sensor noise.
        noise_snr_scale: multiply the AVIRIS SNR profile (≥1 → cleaner).
        hotspot_brightness: radiometric scale of the *hottest* fire
            pixel relative to reflective materials; >1 makes it the
            scene's brightest pixel, as ATDCA's seeding step assumes.
            Cooler spots dim steeply (∝ T^2.4, Wien-like), which is what
            makes the coolest spot hard for error-driven UFCLS while
            direction-driven ATDCA still separates it — the paper's
            Table 3 failure mode.
        dust_plume_radius: plume extent as a fraction of scene diagonal.
        label_threshold: minimum debris abundance for a pixel to carry a
            class label in the ground truth.
    """

    rows: int = 96
    cols: int = 64
    bands: int = 48
    seed: int = 7
    noise_snr_scale: float = 1.0
    hotspot_brightness: float = 4.0
    dust_plume_radius: float = 0.22
    label_threshold: float = 0.55

    def __post_init__(self) -> None:
        if self.rows < 32 or self.cols < 8:
            raise ConfigurationError(
                f"scene must be at least 32x8, got {self.rows}x{self.cols}"
            )
        if self.bands < 8:
            raise ConfigurationError(f"need >= 8 bands, got {self.bands}")
        if self.noise_snr_scale <= 0 or self.hotspot_brightness <= 0:
            raise ConfigurationError("scale factors must be positive")
        if not 0 < self.label_threshold < 1:
            raise ConfigurationError("label_threshold must be in (0, 1)")


@dataclasses.dataclass(frozen=True)
class WTCScene:
    """The generated scene bundle: image + library + exact ground truth.

    Attributes:
        image: the noisy mixed cube, BIP layout.
        library: the spectral library used for mixing.
        truth: hot spots and class map (see :class:`SceneGroundTruth`).
        abundances: ``(rows, cols, n_endmembers)`` true mixing fractions
            over ``endmember_names`` (reflective members only).
        endmember_names: order of the abundance axis.
        config: the generating configuration.
    """

    image: HyperspectralImage
    library: SpectralLibrary
    truth: SceneGroundTruth
    abundances: FloatArray
    endmember_names: tuple[str, ...]
    config: SceneConfig

    @property
    def class_names(self) -> list[str]:
        return self.truth.class_names


def _block_ids(rows: int, cols: int, block: int, rng: np.random.Generator) -> IntArray:
    """Assign each pixel a pseudo-random 'city block' id on a grid."""
    br = np.arange(rows) // block
    bc = np.arange(cols) // block
    ids = br[:, None] * (cols // block + 2) + bc[None, :]
    # Permute block ids so neighbouring blocks get unrelated materials.
    perm = rng.permutation(int(ids.max()) + 1)
    return perm[ids]


def _radial_falloff(
    rows: int, cols: int, center: tuple[float, float], radius: float
) -> FloatArray:
    """Smooth [0, 1] bump centred at ``center`` with the given radius."""
    r = np.arange(rows)[:, None] - center[0]
    c = np.arange(cols)[None, :] - center[1]
    dist = np.sqrt(r * r + c * c)
    return np.exp(-0.5 * (dist / max(radius, 1e-9)) ** 2)


def make_wtc_scene(config: SceneConfig | None = None) -> WTCScene:
    """Generate the synthetic WTC scene.

    Deterministic for a fixed :class:`SceneConfig` (including seed).

    Returns:
        A :class:`WTCScene` whose ground truth contains the seven hot
        spots of Table 3 and the seven debris classes of Table 4.
    """
    cfg = config or SceneConfig()
    rng = np.random.default_rng(cfg.seed)
    rows, cols, bands = cfg.rows, cfg.cols, cfg.bands

    library = build_wtc_library(bands)
    reflective = list(library.reflective_names())
    name_to_idx = {name: i for i, name in enumerate(reflective)}
    n_end = len(reflective)

    # ---- background layout ---------------------------------------------------
    abundance = np.zeros((rows, cols, n_end), dtype=float)

    # Rivers: left and right strips (Hudson / East River).
    water_width = max(3, cols // 10)
    water_mask = np.zeros((rows, cols), dtype=bool)
    water_mask[:, :water_width] = True
    water_mask[:, cols - water_width:] = True

    # Park: a block in the southern quarter (Battery Park).
    park_mask = np.zeros((rows, cols), dtype=bool)
    park_mask[
        int(rows * 0.82): int(rows * 0.95),
        int(cols * 0.30): int(cols * 0.55),
    ] = True
    park_mask &= ~water_mask

    # Street grid: thin asphalt lines every ``block`` pixels.
    block = max(6, min(rows, cols) // 16)
    street_mask = np.zeros((rows, cols), dtype=bool)
    street_mask[::block, :] = True
    street_mask[:, ::block] = True
    street_mask &= ~(water_mask | park_mask)

    # City blocks: the remainder, assigned one dominant urban material each.
    urban_mask = ~(water_mask | park_mask | street_mask)
    ids = _block_ids(rows, cols, block, rng)
    urban_choices = [
        "concrete_wtc01_37b",
        "concrete_wtc01_37am",
        "cement_wtc01_37a",
        "asphalt",
        "soil",
    ]
    block_material = rng.integers(0, len(urban_choices), size=int(ids.max()) + 1)

    abundance[water_mask, name_to_idx["water"]] = 1.0
    abundance[park_mask, name_to_idx["vegetation"]] = 1.0
    abundance[street_mask, name_to_idx["asphalt"]] = 1.0
    for mat_idx, mat_name in enumerate(urban_choices):
        mask = urban_mask & (block_material[ids] == mat_idx)
        abundance[mask, name_to_idx[mat_name]] = 1.0

    # ---- WTC site: dust plume, gypsum patches, smoke ---------------------------
    site = (rows * 0.28, cols * 0.42)  # the collapse site
    diag = float(np.hypot(rows, cols))
    # Saturating the falloff gives each deposit lobe a *pure* core —
    # debris abundance 1.0 over a real area, as thick deposits are —
    # which is what endmember-extraction algorithms need to exist.
    plume = np.clip(
        1.8 * _radial_falloff(rows, cols, site, cfg.dust_plume_radius * diag),
        0.0, 1.0,
    )
    plume *= ~water_mask  # dust does not accumulate on open water

    # Split the plume among the dust/debris classes by angular sector around
    # the site, mimicking the lobed deposit pattern of the USGS map.
    r = np.arange(rows)[:, None] - site[0]
    c = np.arange(cols)[None, :] - site[1]
    angle = np.arctan2(r, c)  # [-pi, pi]
    sector = ((angle + np.pi) / (2 * np.pi) * len(DEBRIS_CLASS_NAMES)).astype(int)
    sector = np.clip(sector, 0, len(DEBRIS_CLASS_NAMES) - 1)
    # Jitter sector borders so classes interleave like real deposits.
    sector = (sector + (rng.random((rows, cols)) < 0.12).astype(int)) % len(
        DEBRIS_CLASS_NAMES
    )

    for class_idx, class_name in enumerate(DEBRIS_CLASS_NAMES):
        weight = plume * (sector == class_idx)
        idx = name_to_idx[class_name]
        abundance *= (1.0 - weight)[:, :, None]
        abundance[:, :, idx] += weight

    # Smoke plume: an elongated lobe south of the site (toward Battery Park).
    smoke = np.zeros((rows, cols))
    length = int(rows * 0.45)
    for step in range(length):
        centre = (site[0] + step, site[1] - step * 0.12)
        if centre[0] >= rows:
            break
        smoke += 0.9 * _radial_falloff(
            rows, cols, centre, max(2.0, cols * 0.05)
        ) * (1.0 - step / length)
    smoke = np.clip(smoke, 0.0, 0.85)
    abundance *= (1.0 - smoke)[:, :, None]
    abundance[:, :, name_to_idx["smoke_plume"]] += smoke

    # Normalize mixing fractions (guard against all-zero pixels).
    totals = abundance.sum(axis=2, keepdims=True)
    totals[totals <= 0] = 1.0
    abundance /= totals

    # ---- linear mixing -----------------------------------------------------------
    endmembers = library.to_matrix(reflective)  # (n_end, bands)
    cube = abundance.reshape(-1, n_end) @ endmembers
    cube = cube.reshape(rows, cols, bands)

    # ---- thermal hot spots ----------------------------------------------------------
    targets: dict[str, TargetSpot] = {}
    offsets = [(-2, -3), (-1, 2), (0, -1), (1, 3), (2, 0), (3, -2), (-3, 1)]
    for (label, temp_f), (dr, dc) in zip(sorted(WTC_HOTSPOT_TEMPS_F.items()), offsets):
        rr = int(np.clip(site[0] + dr * max(1, rows // 48), 0, rows - 1))
        cc = int(np.clip(site[1] + dc * max(1, cols // 48), 0, cols - 1))
        signature = library[f"hotspot_{label.lower()}"].values
        # Radiometric scale rises steeply with temperature (Wien-like):
        # the hottest spot is the scene's brightest pixel while the
        # coolest sits near background magnitude — dim enough to defeat
        # magnitude-driven UFCLS but not direction-driven ATDCA.
        scale = cfg.hotspot_brightness * (temp_f / 1300.0) ** 3.6
        cube[rr, cc] = 0.15 * cube[rr, cc] + scale * signature
        targets[label] = TargetSpot(
            label=label, row=rr, col=cc, temperature_f=temp_f,
            signature=cube[rr, cc].copy(),
        )

    # ---- sensor noise --------------------------------------------------------------
    noise = NoiseModel(
        library.wavelengths,
        vnir_snr=500.0 * cfg.noise_snr_scale,
        swir_snr=100.0 * cfg.noise_snr_scale,
        water_band_snr=10.0 * cfg.noise_snr_scale,
    )
    cube = noise.apply(cube, rng)
    np.clip(cube, 0.0, None, out=cube)
    # Refresh target signatures to their noisy, as-observed values: Table 3
    # scores detected pixels against "pixel vectors at the known target
    # positions", i.e. observed data, not the clean library entries.
    for label, spot in list(targets.items()):
        targets[label] = dataclasses.replace(
            spot, signature=cube[spot.row, spot.col].copy()
        )

    # ---- ground-truth class map ----------------------------------------------------
    debris_idx = np.array([name_to_idx[name] for name in DEBRIS_CLASS_NAMES])
    debris_ab = abundance[:, :, debris_idx]
    dominant = np.argmax(debris_ab, axis=2)
    strength = np.take_along_axis(debris_ab, dominant[:, :, None], axis=2)[:, :, 0]
    class_map = np.where(
        strength >= cfg.label_threshold, dominant, UNLABELLED
    ).astype(np.int32)
    # Hot-spot pixels are targets, not debris samples; unlabel them.
    for spot in targets.values():
        class_map[spot.row, spot.col] = UNLABELLED

    truth = SceneGroundTruth(
        targets=targets,
        class_map=class_map,
        class_names=list(DEBRIS_CLASS_NAMES),
    )
    image = HyperspectralImage(cube, wavelengths=library.wavelengths)
    return WTCScene(
        image=image,
        library=library,
        truth=truth,
        abundances=abundance,
        endmember_names=tuple(reflective),
        config=cfg,
    )
