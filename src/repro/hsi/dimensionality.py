"""Intrinsic (virtual) dimensionality estimation.

The paper sets the number of targets "to 18 after calculating the
intrinsic dimensionality of the data [3]".  The standard estimator from
that reference (Chang's book) is the Harsanyi–Farrand–Chang (HFC)
method: compare the eigenvalues of the sample *correlation* matrix
``R`` with those of the *covariance* matrix ``K``.  A spectral
dimension whose correlation eigenvalue significantly exceeds its
covariance eigenvalue carries signal (a non-zero mean component) rather
than noise; the count of such dimensions is the virtual dimensionality
(VD).  The comparison is a Neyman–Pearson test at false-alarm
probability ``p_fa``, with the variance of the eigenvalue difference
estimated as ``2(λ_cor² + λ_cov²)/n``.

The noise-whitened variant (NWHFC) first whitens by an estimate of the
noise covariance (we use the residual of a diagonal regression — the
classic "intra/inter band" estimator simplified to a shift-difference
residual), which makes the test robust when noise variance varies
strongly across bands, as AVIRIS's does.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError, DataError, ShapeError
from repro.hsi.cube import HyperspectralImage
from repro.types import FloatArray

__all__ = [
    "VirtualDimensionalityResult",
    "hfc_virtual_dimensionality",
    "estimate_noise_covariance",
    "nwhfc_virtual_dimensionality",
]


@dataclasses.dataclass(frozen=True)
class VirtualDimensionalityResult:
    """HFC test outcome.

    Attributes:
        vd: the estimated number of spectrally distinct signal sources.
        correlation_eigenvalues: sorted (descending) eigenvalues of R.
        covariance_eigenvalues: sorted (descending) eigenvalues of K.
        thresholds: per-dimension Neyman-Pearson decision thresholds.
        decisions: per-dimension booleans (True = signal present).
        p_fa: the false-alarm probability used.
    """

    vd: int
    correlation_eigenvalues: FloatArray
    covariance_eigenvalues: FloatArray
    thresholds: FloatArray
    decisions: np.ndarray
    p_fa: float


def _pixel_matrix(data: FloatArray | HyperspectralImage) -> FloatArray:
    if isinstance(data, HyperspectralImage):
        return data.flatten_pixels()
    arr = np.asarray(data, dtype=float)
    if arr.ndim == 3:
        arr = arr.reshape(-1, arr.shape[2])
    if arr.ndim != 2:
        raise ShapeError(f"expected pixels (n, bands) or a cube, got {arr.shape}")
    if arr.shape[0] <= arr.shape[1]:
        raise DataError(
            f"need more pixels ({arr.shape[0]}) than bands ({arr.shape[1]}) "
            "for stable eigenvalue statistics"
        )
    return arr


def hfc_virtual_dimensionality(
    data: FloatArray | HyperspectralImage,
    p_fa: float = 1e-3,
) -> VirtualDimensionalityResult:
    """The HFC estimator of virtual dimensionality.

    Args:
        data: a cube or an ``(n, bands)`` pixel matrix.
        p_fa: Neyman-Pearson false-alarm probability (typical 1e-3/1e-4).

    Returns:
        The test outcome; ``result.vd`` is the paper's ``t``.
    """
    if not 0.0 < p_fa < 0.5:
        raise ConfigurationError(f"p_fa must be in (0, 0.5), got {p_fa}")
    pixels = _pixel_matrix(data)
    n, bands = pixels.shape

    correlation = pixels.T @ pixels / n
    mean = pixels.mean(axis=0)
    covariance = correlation - np.outer(mean, mean)

    lam_r = np.sort(np.linalg.eigvalsh(correlation))[::-1]
    lam_k = np.sort(np.linalg.eigvalsh(covariance))[::-1]

    # Under H0 (noise only) the matched eigenvalues agree; the variance
    # of their difference is approximately 2(λr² + λk²)/n.
    sigma = np.sqrt(2.0 * (lam_r**2 + lam_k**2) / n)
    tau = -stats.norm.ppf(p_fa) * sigma  # one-sided threshold > 0
    decisions = (lam_r - lam_k) > tau
    return VirtualDimensionalityResult(
        vd=int(decisions.sum()),
        correlation_eigenvalues=lam_r,
        covariance_eigenvalues=lam_k,
        thresholds=tau,
        decisions=decisions,
        p_fa=p_fa,
    )


def estimate_noise_covariance(
    data: FloatArray | HyperspectralImage,
) -> FloatArray:
    """Shift-difference estimate of the per-band noise covariance.

    Differencing spatially adjacent pixels cancels the (locally smooth)
    signal and doubles the noise, so ``cov(diff)/2`` estimates the noise
    covariance.  Returned as a full ``(bands, bands)`` matrix (nearly
    diagonal for independent sensor noise).
    """
    if isinstance(data, HyperspectralImage):
        cube = data.values
    else:
        cube = np.asarray(data, dtype=float)
        if cube.ndim == 2:
            # Flat pixel list: difference consecutive pixels.
            diff = np.diff(cube, axis=0)
            return diff.T @ diff / (2.0 * max(diff.shape[0], 1))
    if cube.ndim != 3:
        raise ShapeError(f"expected a cube, got shape {cube.shape}")
    diff = (cube[1:, :, :] - cube[:-1, :, :]).reshape(-1, cube.shape[2])
    if diff.shape[0] < cube.shape[2]:
        raise DataError("scene too small for noise estimation")
    return diff.T @ diff / (2.0 * diff.shape[0])


def nwhfc_virtual_dimensionality(
    data: FloatArray | HyperspectralImage,
    p_fa: float = 1e-3,
    ridge: float = 1e-12,
) -> VirtualDimensionalityResult:
    """Noise-whitened HFC: whiten by the estimated noise covariance,
    then run the HFC test — robust to band-dependent noise levels."""
    pixels = _pixel_matrix(data)
    noise_cov = (
        estimate_noise_covariance(data)
        if isinstance(data, HyperspectralImage)
        else estimate_noise_covariance(pixels)
    )
    bands = pixels.shape[1]
    noise_cov = noise_cov + ridge * np.trace(noise_cov) / bands * np.eye(bands)
    eigvals, eigvecs = np.linalg.eigh(noise_cov)
    eigvals = np.maximum(eigvals, ridge * max(float(eigvals.max()), 1e-30))
    whitener = eigvecs @ np.diag(eigvals**-0.5) @ eigvecs.T
    return hfc_virtual_dimensionality(pixels @ whitener, p_fa=p_fa)
