"""Ground-truth containers for synthetic scenes.

Mirrors the two reference products used by the paper: the USGS thermal
map (hot-spot locations 'A'–'G' with temperatures) used to validate
target detection, and the USGS dust/debris class map used to validate
classification.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.errors import DataError, ShapeError
from repro.types import FloatArray, IntArray

__all__ = ["TargetSpot", "SceneGroundTruth", "UNLABELLED"]

#: Class-map value meaning "no ground truth at this pixel".
UNLABELLED = -1


@dataclasses.dataclass(frozen=True)
class TargetSpot:
    """One known thermal hot spot.

    Attributes:
        label: the paper's letter label ('A'–'G').
        row, col: pixel position in the scene.
        temperature_f: fire temperature in °F.
        signature: the pure at-sensor signature of the spot.
    """

    label: str
    row: int
    col: int
    temperature_f: float
    signature: FloatArray

    def __post_init__(self) -> None:
        sig = np.asarray(self.signature, dtype=float)
        if sig.ndim != 1:
            raise ShapeError(f"target {self.label!r} signature must be 1-D")
        object.__setattr__(self, "signature", sig)

    @property
    def position(self) -> tuple[int, int]:
        return (self.row, self.col)


class SceneGroundTruth:
    """Everything needed to score detection and classification results.

    Args:
        targets: the known hot spots, keyed by label.
        class_map: ``(rows, cols)`` int map; values index
            ``class_names``, with :data:`UNLABELLED` for background.
        class_names: ordered class labels (Table 4 rows).
    """

    def __init__(
        self,
        targets: Mapping[str, TargetSpot],
        class_map: IntArray,
        class_names: Sequence[str],
    ) -> None:
        cmap = np.asarray(class_map)
        if cmap.ndim != 2:
            raise ShapeError(f"class map must be 2-D, got {cmap.shape}")
        if not np.issubdtype(cmap.dtype, np.integer):
            raise DataError("class map must be integer-typed")
        names = list(class_names)
        if not names:
            raise DataError("need at least one class name")
        if cmap.max(initial=UNLABELLED) >= len(names):
            raise DataError(
                f"class map contains label {cmap.max()} but only "
                f"{len(names)} class names were given"
            )
        if cmap.min(initial=UNLABELLED) < UNLABELLED:
            raise DataError("class map labels below the UNLABELLED sentinel")
        for label, spot in targets.items():
            if label != spot.label:
                raise DataError(f"target key {label!r} != spot label {spot.label!r}")
            if not (0 <= spot.row < cmap.shape[0] and 0 <= spot.col < cmap.shape[1]):
                raise DataError(
                    f"target {label!r} at {spot.position} lies outside the "
                    f"{cmap.shape} scene"
                )
        self.targets: dict[str, TargetSpot] = dict(targets)
        self.class_map = cmap
        self.class_names = names

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    @property
    def shape(self) -> tuple[int, int]:
        return self.class_map.shape  # type: ignore[return-value]

    def target_labels(self) -> list[str]:
        """Labels sorted alphabetically ('A' ... 'G')."""
        return sorted(self.targets)

    def target_positions(self) -> dict[str, tuple[int, int]]:
        return {label: spot.position for label, spot in self.targets.items()}

    def target_signatures(self) -> dict[str, FloatArray]:
        return {label: spot.signature for label, spot in self.targets.items()}

    def labelled_fraction(self) -> float:
        """Fraction of pixels carrying a class label."""
        return float(np.mean(self.class_map != UNLABELLED))

    def class_pixel_counts(self) -> IntArray:
        """Number of ground-truth pixels per class, shape ``(n_classes,)``."""
        flat = self.class_map.ravel()
        flat = flat[flat != UNLABELLED]
        return np.bincount(flat, minlength=self.n_classes)
