"""Sensor noise models for synthetic scenes.

AVIRIS SNR varies strongly with wavelength (high in the VNIR, dropping
through the SWIR and collapsing inside the 1.4/1.9 µm atmospheric water
bands).  We model per-band SNR with a smooth profile plus water-band
notches, then inject zero-mean Gaussian noise whose per-band standard
deviation is ``signal_rms / snr``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.types import FloatArray

__all__ = ["aviris_snr_profile", "add_sensor_noise", "NoiseModel"]


def aviris_snr_profile(
    wavelengths_um: FloatArray,
    vnir_snr: float = 500.0,
    swir_snr: float = 100.0,
    water_band_snr: float = 10.0,
) -> FloatArray:
    """Per-band SNR profile shaped like AVIRIS's.

    Linear ramp from ``vnir_snr`` at 0.4 µm to ``swir_snr`` at 2.5 µm,
    with Gaussian notches down to ``water_band_snr`` at the 1.38 and
    1.88 µm atmospheric water absorptions.
    """
    wl = np.asarray(wavelengths_um, dtype=float)
    if wl.ndim != 1:
        raise DataError("wavelengths must be 1-D")
    lo, hi = float(wl[0]), float(wl[-1])
    frac = (wl - lo) / max(hi - lo, 1e-12)
    snr = vnir_snr + (swir_snr - vnir_snr) * frac
    for center in (1.38, 1.88):
        notch = np.exp(-0.5 * ((wl - center) / 0.03) ** 2)
        snr = snr * (1 - notch) + water_band_snr * notch
    return np.maximum(snr, 1.0)


def add_sensor_noise(
    cube: FloatArray,
    snr: FloatArray | float,
    rng: np.random.Generator,
    signal_dependence: float = 0.7,
) -> FloatArray:
    """Return ``cube`` plus zero-mean Gaussian noise scaled to per-band SNR.

    The noise standard deviation blends a signal-dependent (shot-noise)
    term with a scene-level floor:
    ``σ = [sd · |pixel value| + (1 − sd) · band RMS] / SNR``.
    Pure floor noise (``signal_dependence = 0``) makes dark pixels —
    water, shadow — spectrally chaotic under angle metrics, which real
    sensors are not; AVIRIS noise is predominantly signal-dependent.

    Args:
        cube: ``(rows, cols, bands)`` radiance/reflectance values.
        snr: scalar or per-band ``(bands,)`` signal-to-noise ratios.
        rng: numpy Generator — callers own seeding for reproducibility.
        signal_dependence: fraction of σ that scales with the local
            signal (in [0, 1]).
    """
    data = np.asarray(cube, dtype=float)
    if data.ndim != 3:
        raise DataError(f"expected (rows, cols, bands), got {data.shape}")
    if not 0.0 <= signal_dependence <= 1.0:
        raise DataError(
            f"signal_dependence must be in [0, 1], got {signal_dependence}"
        )
    snr_arr = np.broadcast_to(np.asarray(snr, dtype=float), (data.shape[2],))
    if np.any(snr_arr <= 0):
        raise DataError("SNR values must be positive")
    band_rms = np.sqrt(np.mean(data * data, axis=(0, 1)))
    sigma = (
        signal_dependence * np.abs(data)
        + (1.0 - signal_dependence) * band_rms
    ) / snr_arr
    noise = rng.standard_normal(data.shape) * sigma
    return data + noise


class NoiseModel:
    """Bundles an SNR profile with a seeded generator for repeatable noise."""

    def __init__(
        self,
        wavelengths_um: FloatArray,
        vnir_snr: float = 500.0,
        swir_snr: float = 100.0,
        water_band_snr: float = 10.0,
    ) -> None:
        self.snr = aviris_snr_profile(
            wavelengths_um, vnir_snr, swir_snr, water_band_snr
        )

    def apply(self, cube: FloatArray, rng: np.random.Generator) -> FloatArray:
        """Noise-corrupt ``cube`` (returns a new array)."""
        return add_sensor_noise(cube, self.snr, rng)
