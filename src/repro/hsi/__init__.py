"""Hyperspectral imaging substrate: cubes, spectra, scenes, metrics."""

from repro.hsi.cube import HyperspectralImage, row_slab, stack_rows
from repro.hsi.dimensionality import (
    VirtualDimensionalityResult,
    estimate_noise_covariance,
    hfc_virtual_dimensionality,
    nwhfc_virtual_dimensionality,
)
from repro.hsi.evaluation import (
    ClassificationScore,
    majority_mapping,
    score_classification,
)
from repro.hsi.groundtruth import UNLABELLED, SceneGroundTruth, TargetSpot
from repro.hsi.metrics import (
    confusion_matrix,
    match_targets,
    overall_accuracy,
    per_class_accuracy,
    rmse,
    sad,
    sad_pairwise,
    sad_to_references,
    spectral_information_divergence,
)
from repro.hsi.noise import NoiseModel, add_sensor_noise, aviris_snr_profile
from repro.hsi.scene import (
    DEBRIS_CLASS_NAMES,
    SceneConfig,
    WTCScene,
    make_wtc_scene,
)
from repro.hsi.spectra import (
    AVIRIS_NUM_BANDS,
    AVIRIS_RANGE_UM,
    WTC_HOTSPOT_TEMPS_F,
    Signature,
    SpectralLibrary,
    aviris_wavelengths,
    blackbody_radiance,
    build_wtc_library,
    fahrenheit_to_kelvin,
    thermal_signature,
)

__all__ = [
    "AVIRIS_NUM_BANDS",
    "AVIRIS_RANGE_UM",
    "ClassificationScore",
    "DEBRIS_CLASS_NAMES",
    "majority_mapping",
    "score_classification",
    "HyperspectralImage",
    "NoiseModel",
    "SceneConfig",
    "SceneGroundTruth",
    "Signature",
    "SpectralLibrary",
    "TargetSpot",
    "UNLABELLED",
    "VirtualDimensionalityResult",
    "WTCScene",
    "WTC_HOTSPOT_TEMPS_F",
    "add_sensor_noise",
    "aviris_snr_profile",
    "aviris_wavelengths",
    "blackbody_radiance",
    "build_wtc_library",
    "confusion_matrix",
    "estimate_noise_covariance",
    "fahrenheit_to_kelvin",
    "hfc_virtual_dimensionality",
    "make_wtc_scene",
    "nwhfc_virtual_dimensionality",
    "match_targets",
    "overall_accuracy",
    "per_class_accuracy",
    "rmse",
    "row_slab",
    "sad",
    "sad_pairwise",
    "sad_to_references",
    "spectral_information_divergence",
    "stack_rows",
    "thermal_signature",
]
