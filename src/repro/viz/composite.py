"""False-colour composites and classification-map rendering (Figure 1).

The paper's Figure 1 shows the WTC scene as a false-colour composite of
the 1682/1107/655 nm channels (R/G/B) with the thermal hot spots marked.
These helpers reproduce both panels for any scene.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.hsi.cube import HyperspectralImage
from repro.hsi.groundtruth import UNLABELLED, SceneGroundTruth
from repro.types import FloatArray, IntArray

__all__ = [
    "PAPER_COMPOSITE_BANDS_UM",
    "stretch",
    "false_color_composite",
    "classification_to_rgb",
    "mark_targets",
    "DEFAULT_CLASS_PALETTE",
]

#: The paper's Figure 1 channels, in µm (1682 / 1107 / 655 nm → R/G/B).
PAPER_COMPOSITE_BANDS_UM: tuple[float, float, float] = (1.682, 1.107, 0.655)

#: Distinct colours for classification maps (uint8 RGB rows).
DEFAULT_CLASS_PALETTE: np.ndarray = np.array(
    [
        [230, 25, 75], [60, 180, 75], [255, 225, 25], [0, 130, 200],
        [245, 130, 48], [145, 30, 180], [70, 240, 240], [240, 50, 230],
        [210, 245, 60], [250, 190, 212], [0, 128, 128], [220, 190, 255],
        [170, 110, 40], [255, 250, 200], [128, 0, 0], [170, 255, 195],
        [128, 128, 0], [255, 215, 180], [0, 0, 128], [128, 128, 128],
        [255, 255, 255], [100, 60, 30], [60, 100, 160], [160, 60, 100],
    ],
    dtype=np.uint8,
)


def stretch(band: FloatArray, low_pct: float = 2.0, high_pct: float = 98.0) -> FloatArray:
    """Percentile contrast stretch of one band to [0, 1]."""
    if not 0 <= low_pct < high_pct <= 100:
        raise ConfigurationError(
            f"invalid percentile range ({low_pct}, {high_pct})"
        )
    arr = np.asarray(band, dtype=float)
    lo, hi = np.percentile(arr, [low_pct, high_pct])
    if hi <= lo:
        return np.zeros_like(arr)
    return np.clip((arr - lo) / (hi - lo), 0.0, 1.0)


def false_color_composite(
    image: HyperspectralImage,
    bands_um: tuple[float, float, float] = PAPER_COMPOSITE_BANDS_UM,
) -> IntArray:
    """A paper-style false-colour composite → uint8 ``(rows, cols, 3)``.

    Selects the bands nearest the requested wavelengths and
    percentile-stretches each channel.
    """
    if image.wavelengths is None:
        raise DataError("image needs a wavelength grid for band lookup")
    channels = [
        stretch(image.band(image.band_nearest(um))) for um in bands_um
    ]
    rgb = np.stack(channels, axis=2)
    return (rgb * 255.0 + 0.5).astype(np.uint8)


def classification_to_rgb(
    labels: IntArray, palette: np.ndarray | None = None
) -> IntArray:
    """Colour a label map; :data:`~repro.hsi.groundtruth.UNLABELLED` → black."""
    lab = np.asarray(labels)
    if lab.ndim != 2:
        raise DataError(f"labels must be 2-D, got shape {lab.shape}")
    pal = DEFAULT_CLASS_PALETTE if palette is None else np.asarray(palette, np.uint8)
    n = int(lab.max(initial=0)) + 1
    if n > pal.shape[0]:
        reps = int(np.ceil(n / pal.shape[0]))
        pal = np.tile(pal, (reps, 1))
    out = np.zeros((*lab.shape, 3), dtype=np.uint8)
    valid = lab != UNLABELLED
    out[valid] = pal[lab[valid]]
    return out


def mark_targets(
    rgb: IntArray,
    truth: SceneGroundTruth,
    color: tuple[int, int, int] = (255, 0, 0),
    radius: int = 2,
) -> IntArray:
    """Overlay hot-spot markers (filled squares) on a composite copy."""
    img = np.asarray(rgb).copy()
    if img.ndim != 3 or img.shape[2] != 3:
        raise DataError(f"expected (rows, cols, 3), got {img.shape}")
    rows, cols = img.shape[:2]
    for spot in truth.targets.values():
        r0 = max(spot.row - radius, 0)
        r1 = min(spot.row + radius + 1, rows)
        c0 = max(spot.col - radius, 0)
        c1 = min(spot.col + radius + 1, cols)
        img[r0:r1, c0:c1] = color
    return img
