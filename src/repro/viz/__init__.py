"""Visualization: PPM writers, composites, terminal charts."""

from repro.viz.ascii_chart import line_chart
from repro.viz.composite import (
    DEFAULT_CLASS_PALETTE,
    PAPER_COMPOSITE_BANDS_UM,
    classification_to_rgb,
    false_color_composite,
    mark_targets,
    stretch,
)
from repro.viz.ppm import write_pgm, write_ppm
from repro.viz.timeline import ascii_gantt, gantt_of_run, gantt_of_trace

__all__ = [
    "ascii_gantt",
    "gantt_of_run",
    "gantt_of_trace",
    "DEFAULT_CLASS_PALETTE",
    "PAPER_COMPOSITE_BANDS_UM",
    "classification_to_rgb",
    "false_color_composite",
    "line_chart",
    "mark_targets",
    "stretch",
    "write_pgm",
    "write_ppm",
]
