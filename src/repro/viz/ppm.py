"""Minimal binary PPM/PGM image writers (no external imaging deps)."""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DataError, ShapeError
from repro.types import IntArray

__all__ = ["write_ppm", "write_pgm"]


def _as_uint8(arr: np.ndarray, name: str) -> np.ndarray:
    a = np.asarray(arr)
    if a.dtype != np.uint8:
        if np.issubdtype(a.dtype, np.floating):
            if a.min(initial=0) < 0 or a.max(initial=0) > 1:
                raise DataError(
                    f"float {name} must be in [0, 1] to convert to uint8"
                )
            a = (a * 255.0 + 0.5).astype(np.uint8)
        elif np.issubdtype(a.dtype, np.integer):
            if a.min(initial=0) < 0 or a.max(initial=0) > 255:
                raise DataError(f"integer {name} must be in [0, 255]")
            a = a.astype(np.uint8)
        else:
            raise DataError(f"unsupported {name} dtype {a.dtype}")
    return a


def write_ppm(path: str | os.PathLike, rgb: IntArray) -> None:
    """Write an ``(rows, cols, 3)`` image as binary PPM (P6).

    Accepts uint8, [0, 255] integers, or [0, 1] floats.
    """
    img = _as_uint8(rgb, "rgb")
    if img.ndim != 3 or img.shape[2] != 3:
        raise ShapeError(f"expected (rows, cols, 3), got {img.shape}")
    rows, cols, _ = img.shape
    with open(path, "wb") as fh:
        fh.write(f"P6\n{cols} {rows}\n255\n".encode("ascii"))
        fh.write(np.ascontiguousarray(img).tobytes())


def write_pgm(path: str | os.PathLike, gray: IntArray) -> None:
    """Write an ``(rows, cols)`` image as binary PGM (P5)."""
    img = _as_uint8(gray, "gray")
    if img.ndim != 2:
        raise ShapeError(f"expected (rows, cols), got {img.shape}")
    rows, cols = img.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{cols} {rows}\n255\n".encode("ascii"))
        fh.write(np.ascontiguousarray(img).tobytes())
