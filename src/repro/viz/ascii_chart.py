"""Terminal line charts — used to render Figure 2 (speedup curves)
without any plotting dependency."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["line_chart"]

_MARKERS = "ox+*#@%&"


def line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 70,
    height: int = 20,
    title: str | None = None,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more y(x) series on a character canvas.

    Args:
        x: shared x coordinates (ascending).
        series: name → y values (same length as ``x``).
        width, height: plot-area size in characters.
        title/y_label/x_label: decorations.

    Returns:
        The chart as a multi-line string, with a legend mapping each
        series to its marker character.
    """
    xs = np.asarray(x, dtype=float)
    if xs.ndim != 1 or xs.size < 2:
        raise ConfigurationError("need >= 2 x points")
    if not series:
        raise ConfigurationError("need at least one series")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(f"at most {len(_MARKERS)} series supported")
    if width < 10 or height < 4:
        raise ConfigurationError("canvas too small")
    ys = {}
    for name, vals in series.items():
        arr = np.asarray(vals, dtype=float)
        if arr.shape != xs.shape:
            raise ConfigurationError(
                f"series {name!r} has {arr.size} points for {xs.size} x values"
            )
        ys[name] = arr
    y_all = np.concatenate(list(ys.values()))
    y_min, y_max = float(y_all.min()), float(y_all.max())
    if y_max <= y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(xs.min()), float(xs.max())

    canvas = [[" "] * width for _ in range(height)]
    for (name, arr), marker in zip(ys.items(), _MARKERS):
        # Dense sampling along segments so lines read as lines.
        for i in range(xs.size - 1):
            for frac in np.linspace(0.0, 1.0, max(width // (xs.size - 1), 2)):
                xv = xs[i] + frac * (xs[i + 1] - xs[i])
                yv = arr[i] + frac * (arr[i + 1] - arr[i])
                col = int((xv - x_min) / (x_max - x_min) * (width - 1))
                row = int((yv - y_min) / (y_max - y_min) * (height - 1))
                cell = canvas[height - 1 - row][col]
                if cell == " " or cell == ".":
                    canvas[height - 1 - row][col] = "."
        for xv, yv in zip(xs, arr):  # markers on the actual samples
            col = int((xv - x_min) / (x_max - x_min) * (width - 1))
            row = int((yv - y_min) / (y_max - y_min) * (height - 1))
            canvas[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.1f}"
    bottom_label = f"{y_min:.1f}"
    pad = max(len(top_label), len(bottom_label), len(y_label))
    for i, row_cells in enumerate(canvas):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row_cells)}")
    axis = " " * pad + " +" + "-" * width
    lines.append(axis)
    xt = f"{x_min:.0f}".ljust(width - 8) + f"{x_max:.0f}"
    lines.append(" " * (pad + 2) + xt + (f"  {x_label}" if x_label else ""))
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(ys.items(), _MARKERS)
    )
    lines.append(" " * (pad + 2) + legend)
    return "\n".join(lines)
