"""ASCII Gantt rendering of engine traces and tracer spans.

Turns a traced :class:`~repro.cluster.engine.SimulationResult` (or an
observability session's spans — see :func:`gantt_of_trace`) into a
per-rank timeline — one lane per processor, `#` for parallel compute,
`S` for sequential compute, `=` for transfers, `.` for enclosing
phases, spaces for idle — the quickest way to *see* where a schedule
loses time (a master serializing its scatter, a slow worker pinning
the barrier, a serial link queueing transfers).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

from repro.cluster.engine import SimulationResult, TraceEvent
from repro.errors import ConfigurationError

__all__ = ["ascii_gantt", "gantt_of_run", "gantt_of_trace"]

_GLYPHS = {
    "compute": "#", "seq": "S", "transfer": "=", "phase": ".", "fault": "!",
}
#: Painting priority: faults over compute over transfer over phase
#: background (overlaps happen when a transfer interval abuts a compute
#: interval at cell resolution, and phase spans enclose their children).
_PRIORITY = {
    "phase": -1, ".": -1,
    "transfer": 0, "=": 0,
    "compute": 1, "#": 1,
    "seq": 2, "S": 2,
    "fault": 3, "!": 3,
}

#: Span category → gantt event kind (mpi waits render as transfers;
#: kernel spans bracket the same interval the engine charges, so they
#: paint as compute — on the wall-clock backend they are the only
#: record of compute time).
_SPAN_KINDS = {
    "compute": "compute",
    "seq": "seq",
    "kernel": "compute",
    "transfer": "transfer",
    "mpi": "transfer",
    "phase": "phase",
    "fault": "fault",
}


def ascii_gantt(
    events: Sequence[TraceEvent],
    n_ranks: int,
    makespan: float | None = None,
    width: int = 80,
    labels: Sequence[str] | None = None,
) -> str:
    """Render trace events as one lane per rank.

    Args:
        events: the engine trace.
        n_ranks: number of lanes.
        makespan: time axis extent (defaults to the last event end).
        width: characters across the time axis.
        labels: optional lane labels (defaults to ``r0``, ``r1``, ...).
    """
    if n_ranks < 1:
        raise ConfigurationError("need at least one rank")
    if width < 10:
        raise ConfigurationError("width must be >= 10")
    if not events:
        raise ConfigurationError("no events to render (trace the engine)")
    horizon = makespan if makespan is not None else max(e.end for e in events)
    names = list(labels) if labels is not None else [f"r{i}" for i in range(n_ranks)]
    if len(names) != n_ranks:
        raise ConfigurationError(f"need {n_ranks} labels, got {len(names)}")
    pad = max(len(n) for n in names)

    lanes = [[" "] * width for _ in range(n_ranks)]
    for event in events:
        if not 0 <= event.rank < n_ranks:
            raise ConfigurationError(
                f"event rank {event.rank} outside [0, {n_ranks})"
            )
        glyph = _GLYPHS.get(event.kind)
        if glyph is None or horizon <= 0:
            # A zero-extent trace (every event instantaneous) still
            # renders — as an empty axis — rather than dividing by it.
            continue
        first = int(event.start / horizon * (width - 1))
        last = max(first, int(min(event.end, horizon) / horizon * (width - 1)))
        for col in range(first, last + 1):
            cell = lanes[event.rank][col]
            if cell == " " or _PRIORITY[glyph] >= _PRIORITY.get(cell, -2):
                lanes[event.rank][col] = glyph

    lines = [
        f"{names[i].rjust(pad)} |{''.join(lanes[i])}|" for i in range(n_ranks)
    ]
    axis = " " * pad + " +" + "-" * width + "+"
    scale = (
        " " * pad
        + "  0"
        + " " * (width - 6 - len(f"{horizon:.2f}"))
        + f"{horizon:.2f} s"
    )
    legend = (
        " " * pad
        + "  #=parallel compute  S=sequential  ==transfer  .=phase  !=fault"
    )
    return "\n".join(lines + [axis, scale, legend])


def gantt_of_run(result: SimulationResult, width: int = 80) -> str:
    """Gantt chart straight from a traced simulation result."""
    return ascii_gantt(
        result.events,
        n_ranks=len(result.finish_times),
        makespan=result.makespan,
        width=width,
    )


@dataclasses.dataclass(frozen=True)
class _SpanEvent:
    """Adapter: a tracer span viewed through the TraceEvent interface."""

    kind: str
    rank: int
    start: float
    end: float


def _recovery_segments(spans: Sequence[Any]) -> list[tuple[float, tuple[int, ...]]]:
    """Rank remappings introduced by ``recovery.repartition`` seams.

    Each returned ``(from_time, ordered)`` entry says: spans starting at
    or after ``from_time`` ran on the survivor subset whose dense rank
    ``i`` is original rank ``ordered[i]``.  Seams without a ``ranks``
    attribute (pre-PR-4 traces) are skipped — those traces render as
    before, with dense rank numbering.
    """
    segments: list[tuple[float, tuple[int, ...]]] = []
    for span in spans:
        if span.category != "fault" or span.name != "recovery.repartition":
            continue
        ranks_attr = span.attrs.get("ranks")
        if not ranks_attr:
            continue
        ordered = tuple(int(r) for r in str(ranks_attr).split(","))
        segments.append((span.end, ordered))
    segments.sort(key=lambda seg: seg[0])
    return segments


def gantt_of_trace(
    source: Any,
    n_ranks: int | None = None,
    width: int = 80,
    labels: Sequence[str] | None = None,
) -> str:
    """Gantt chart from tracer spans — works for wall-clock runs too.

    The engine only records :class:`TraceEvent` streams under the sim
    backend; this renders the same picture from an
    :class:`~repro.obs.ObsSession` (or tracer, or span sequence), which
    both backends populate.  Wall-clock spans are shifted so the chart
    starts at the earliest span.

    Fault-tolerant traces are handled: after a ``recovery.repartition``
    seam the survivors run with renumbered dense ranks, and the seam
    span's ``ranks`` attribute carries the dense → original mapping, so
    post-recovery spans land back on their original lanes.  A crashed
    rank's lane simply ends at the crash (marked by the ``!`` fault
    glyph) instead of being overdrawn by the rank that inherited its
    dense id.

    Args:
        source: session / tracer / span sequence (see ``spans_of``).
        n_ranks: lane count (default: highest *original* span rank + 1).
        width: characters across the time axis.
        labels: optional lane labels.
    """
    from repro.obs.export import spans_of

    spans = spans_of(source)
    if not spans:
        raise ConfigurationError("no spans to render (trace a run first)")
    segments = _recovery_segments(spans)

    def lane_of(span: Any) -> int:
        mapping = None
        for from_time, ordered in segments:
            if span.start >= from_time:
                mapping = ordered
            else:
                break
        if mapping is not None and span.rank < len(mapping):
            return mapping[span.rank]
        return span.rank

    def kind_of(span: Any) -> str:
        if span.category == "kernel" and span.attrs.get("sequential"):
            return "seq"
        return _SPAN_KINDS.get(span.category, "phase")

    lanes = [lane_of(s) for s in spans]
    ranks = n_ranks if n_ranks is not None else max(lanes) + 1
    t0 = min(s.start for s in spans)
    events = [
        _SpanEvent(
            kind=kind_of(s),
            rank=lane,
            start=s.start - t0,
            end=s.end - t0,
        )
        for s, lane in zip(spans, lanes)
    ]
    return ascii_gantt(
        events,
        n_ranks=ranks,
        makespan=max(e.end for e in events),
        width=width,
        labels=labels,
    )
