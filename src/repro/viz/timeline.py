"""ASCII Gantt rendering of engine traces.

Turns a traced :class:`~repro.cluster.engine.SimulationResult` into a
per-rank timeline — one lane per processor, `#` for parallel compute,
`S` for sequential compute, `=` for transfers, spaces for idle — the
quickest way to *see* where a schedule loses time (a master serializing
its scatter, a slow worker pinning the barrier, a serial link queueing
transfers).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.engine import SimulationResult, TraceEvent
from repro.errors import ConfigurationError

__all__ = ["ascii_gantt", "gantt_of_run"]

_GLYPHS = {"compute": "#", "seq": "S", "transfer": "="}
#: Painting priority: compute over transfer (overlaps happen when a
#: transfer interval abuts a compute interval at cell resolution).
_PRIORITY = {"transfer": 0, "=": 0, "compute": 1, "#": 1, "seq": 2, "S": 2}


def ascii_gantt(
    events: Sequence[TraceEvent],
    n_ranks: int,
    makespan: float | None = None,
    width: int = 80,
    labels: Sequence[str] | None = None,
) -> str:
    """Render trace events as one lane per rank.

    Args:
        events: the engine trace.
        n_ranks: number of lanes.
        makespan: time axis extent (defaults to the last event end).
        width: characters across the time axis.
        labels: optional lane labels (defaults to ``r0``, ``r1``, ...).
    """
    if n_ranks < 1:
        raise ConfigurationError("need at least one rank")
    if width < 10:
        raise ConfigurationError("width must be >= 10")
    if not events:
        raise ConfigurationError("no events to render (trace the engine)")
    horizon = makespan if makespan is not None else max(e.end for e in events)
    if horizon <= 0:
        raise ConfigurationError("makespan must be positive")
    names = list(labels) if labels is not None else [f"r{i}" for i in range(n_ranks)]
    if len(names) != n_ranks:
        raise ConfigurationError(f"need {n_ranks} labels, got {len(names)}")
    pad = max(len(n) for n in names)

    lanes = [[" "] * width for _ in range(n_ranks)]
    for event in events:
        if not 0 <= event.rank < n_ranks:
            raise ConfigurationError(
                f"event rank {event.rank} outside [0, {n_ranks})"
            )
        glyph = _GLYPHS.get(event.kind)
        if glyph is None:
            continue
        first = int(event.start / horizon * (width - 1))
        last = max(first, int(min(event.end, horizon) / horizon * (width - 1)))
        for col in range(first, last + 1):
            cell = lanes[event.rank][col]
            if cell == " " or _PRIORITY[glyph] >= _PRIORITY.get(cell, -1):
                lanes[event.rank][col] = glyph

    lines = [
        f"{names[i].rjust(pad)} |{''.join(lanes[i])}|" for i in range(n_ranks)
    ]
    axis = " " * pad + " +" + "-" * width + "+"
    scale = (
        " " * pad
        + "  0"
        + " " * (width - 6 - len(f"{horizon:.2f}"))
        + f"{horizon:.2f} s"
    )
    legend = " " * pad + "  #=parallel compute  S=sequential  ==transfer"
    return "\n".join(lines + [axis, scale, legend])


def gantt_of_run(result: SimulationResult, width: int = 80) -> str:
    """Gantt chart straight from a traced simulation result."""
    return ascii_gantt(
        result.events,
        n_ranks=len(result.finish_times),
        makespan=result.makespan,
        width=width,
    )
