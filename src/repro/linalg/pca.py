"""Principal component transform (PCT) building blocks.

Hetero-PCT (Algorithm 4) computes a band-space mean and covariance,
takes the eigendecomposition at the master (data-dependent, band-sized,
hence sequential in the paper), and projects every pixel onto the top
``c`` eigenvectors.  These kernels are shared by the sequential and
parallel implementations; the parallel version assembles the covariance
from per-worker partial sums via :func:`partial_covariance_sums` and
:func:`combine_covariance_sums`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError, ShapeError
from repro.types import FloatArray

__all__ = [
    "mean_vector",
    "covariance_matrix",
    "partial_covariance_sums",
    "combine_covariance_sums",
    "pct_transform",
    "apply_pct",
    "explained_variance_ratio",
]


def _pixmat(pixels: FloatArray) -> FloatArray:
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim != 2:
        raise ShapeError(f"expected (n, bands), got {pix.shape}")
    if pix.shape[0] == 0:
        raise DataError("cannot compute statistics of zero pixels")
    return pix


def mean_vector(pixels: FloatArray) -> FloatArray:
    """Band-space mean over pixels → ``(bands,)``."""
    return _pixmat(pixels).mean(axis=0)


def covariance_matrix(pixels: FloatArray, mean: FloatArray | None = None) -> FloatArray:
    """Biased (1/n) band covariance → ``(bands, bands)``."""
    pix = _pixmat(pixels)
    mu = mean_vector(pix) if mean is None else np.asarray(mean, dtype=float)
    if mu.shape != (pix.shape[1],):
        raise ShapeError(f"mean shape {mu.shape} != ({pix.shape[1]},)")
    centered = pix - mu
    return centered.T @ centered / pix.shape[0]


def partial_covariance_sums(pixels: FloatArray) -> tuple[FloatArray, FloatArray, int]:
    """Per-partition sufficient statistics ``(Σx, Σxxᵀ, n)``.

    Workers each compute these over their local partition; the master
    combines them with :func:`combine_covariance_sums` — numerically the
    same covariance as a single pass over all pixels.
    """
    pix = _pixmat(pixels)
    return pix.sum(axis=0), pix.T @ pix, pix.shape[0]


def combine_covariance_sums(
    parts: list[tuple[FloatArray, FloatArray, int]],
) -> tuple[FloatArray, FloatArray]:
    """Combine partial sums into global ``(mean, covariance)``."""
    if not parts:
        raise DataError("no partial sums to combine")
    total_n = sum(int(n) for _, _, n in parts)
    if total_n == 0:
        raise DataError("partial sums cover zero pixels")
    sum_x = np.sum([s for s, _, _ in parts], axis=0)
    sum_xxt = np.sum([m for _, m, _ in parts], axis=0)
    mean = sum_x / total_n
    cov = sum_xxt / total_n - np.outer(mean, mean)
    return mean, cov


def pct_transform(
    covariance: FloatArray, n_components: int | None = None
) -> tuple[FloatArray, FloatArray]:
    """Eigendecomposition of the covariance, sorted by decreasing variance.

    Returns:
        ``(transform, eigenvalues)`` where ``transform`` is
        ``(n_components, bands)`` — rows are principal directions — so a
        pixel is reduced via ``transform @ (x − mean)``.
    """
    cov = np.asarray(covariance, dtype=float)
    if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
        raise ShapeError(f"covariance must be square, got {cov.shape}")
    if not np.allclose(cov, cov.T, atol=1e-8 * max(1.0, float(np.abs(cov).max()))):
        raise DataError("covariance matrix is not symmetric")
    eigvals, eigvecs = np.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1]
    eigvals = eigvals[order]
    eigvecs = eigvecs[:, order]
    # Deterministic sign convention: the largest-magnitude component of
    # each eigenvector is positive.  eigh's signs are arbitrary, and the
    # parallel path (sufficient statistics) must agree with the
    # sequential one (centered covariance) up to round-off.
    pivot = np.argmax(np.abs(eigvecs), axis=0)
    signs = np.sign(eigvecs[pivot, np.arange(eigvecs.shape[1])])
    signs[signs == 0] = 1.0
    eigvecs = eigvecs * signs
    k = cov.shape[0] if n_components is None else int(n_components)
    if not 1 <= k <= cov.shape[0]:
        raise DataError(
            f"n_components must be in [1, {cov.shape[0]}], got {n_components}"
        )
    return eigvecs[:, :k].T.copy(), eigvals


def apply_pct(
    pixels: FloatArray, mean: FloatArray, transform: FloatArray
) -> FloatArray:
    """Project pixels: ``T @ (x − m)`` per pixel → ``(n, n_components)``."""
    pix = _pixmat(pixels)
    mu = np.asarray(mean, dtype=float)
    t = np.asarray(transform, dtype=float)
    if t.ndim != 2 or t.shape[1] != pix.shape[1] or mu.shape != (pix.shape[1],):
        raise ShapeError(
            f"incompatible shapes: pixels {pix.shape}, mean {mu.shape}, "
            f"transform {t.shape}"
        )
    return (pix - mu) @ t.T


def explained_variance_ratio(eigenvalues: FloatArray) -> FloatArray:
    """Fraction of total variance per (sorted) component."""
    vals = np.asarray(eigenvalues, dtype=float)
    vals = np.maximum(vals, 0.0)
    total = vals.sum()
    if total <= 0:
        raise DataError("all eigenvalues are zero")
    return vals / total
