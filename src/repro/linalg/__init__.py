"""Numerical kernels: OSP projection, constrained unmixing, PCT."""

from repro.linalg.fcls import (
    fcls_abundances,
    ls_abundances,
    nnls_abundances,
    reconstruction_error,
    scls_abundances,
)
from repro.linalg.osp import (
    brightest_pixel_index,
    orthonormal_basis,
    osp_projector,
    projected_energy,
    residual_energy,
)
from repro.linalg.pca import (
    apply_pct,
    combine_covariance_sums,
    covariance_matrix,
    explained_variance_ratio,
    mean_vector,
    partial_covariance_sums,
    pct_transform,
)

__all__ = [
    "apply_pct",
    "brightest_pixel_index",
    "combine_covariance_sums",
    "covariance_matrix",
    "explained_variance_ratio",
    "fcls_abundances",
    "ls_abundances",
    "mean_vector",
    "nnls_abundances",
    "orthonormal_basis",
    "osp_projector",
    "partial_covariance_sums",
    "pct_transform",
    "projected_energy",
    "reconstruction_error",
    "residual_energy",
    "scls_abundances",
]
