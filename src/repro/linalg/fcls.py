"""Least-squares linear unmixing solvers.

UFCLS (Algorithm 3) scores every pixel by the residual of its *fully
constrained* linear-mixture fit against the current target set: the
abundances must be non-negative and sum to one.  We provide the
unconstrained (LS), sum-to-one (SCLS, closed form via a Lagrange
multiplier), non-negative (NNLS), and fully constrained (FCLS,
Heinz–Chang style active-set iteration on top of SCLS) solvers, plus
the reconstruction-error map UFCLS consumes.

The FCLS path is vectorized over pixels: the SCLS solve is a single
batched linear-algebra expression, and only pixels whose solution went
negative enter the per-pixel active-set refinement.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from repro.errors import ConvergenceError, DataError, ShapeError
from repro.types import FloatArray

__all__ = [
    "ls_abundances",
    "scls_abundances",
    "nnls_abundances",
    "fcls_abundances",
    "reconstruction_error",
    "IncrementalFCLS",
    "ScratchFCLS",
]


def _validate(pixels: FloatArray, endmembers: FloatArray) -> tuple[FloatArray, FloatArray]:
    pix = np.asarray(pixels, dtype=float)
    end = np.asarray(endmembers, dtype=float)
    if pix.ndim == 1:
        pix = pix[None, :]
    if end.ndim == 1:
        end = end[None, :]
    if pix.ndim != 2 or end.ndim != 2:
        raise ShapeError(
            f"pixels and endmembers must be 2-D, got {pix.shape} and {end.shape}"
        )
    if pix.shape[1] != end.shape[1]:
        raise ShapeError(
            f"band mismatch: pixels {pix.shape[1]} vs endmembers {end.shape[1]}"
        )
    if end.shape[0] == 0:
        raise DataError("need at least one endmember")
    return pix, end


def _reg_inverse(gram: FloatArray, ridge: float) -> FloatArray:
    # A tiny ridge keeps near-collinear target sets (common once ATDCA/UFCLS
    # have extracted many similar spectra) numerically solvable.  The damping
    # is per-entry (``ridge·max(1, G_jj)``, Levenberg–Marquardt style): entry
    # ``j``'s regularization depends only on target ``j``, never on later
    # additions, which is what lets :class:`IncrementalFCLS` grow the inverse
    # by rank-1 bordering and still invert *exactly* the same matrix as this
    # from-scratch path.
    damped = gram + np.diag(ridge * np.maximum(1.0, np.diag(gram)))
    return np.linalg.inv(damped)


def _gram_inverse(end: FloatArray, ridge: float) -> FloatArray:
    return _reg_inverse(end @ end.T, ridge)


def _scls_from_cross(cross: FloatArray, ginv: FloatArray) -> FloatArray:
    """The closed-form SCLS solution from cross-products alone.

    ``cross`` is ``pixels @ endmembers.T`` (``(n, k)``) and ``ginv`` the
    (regularized) Gram inverse — everything the Lagrange formula needs,
    so callers that already hold these products skip the O(n·bands·k)
    design-matrix work entirely.
    """
    a_ls = cross @ ginv  # (n, k)
    ones = np.ones(ginv.shape[0])
    ginv_one = ginv @ ones  # (k,)
    denom = float(ones @ ginv_one)
    if abs(denom) < 1e-300:
        raise DataError("sum-to-one constraint is degenerate for these endmembers")
    correction = (a_ls.sum(axis=1) - 1.0) / denom
    return a_ls - correction[:, None] * ginv_one[None, :]


def _active_set_refine(
    result: FloatArray,
    cross: FloatArray,
    gram: FloatArray,
    ridge: float,
    rounds: int,
) -> FloatArray:
    """Heinz–Chang active-set refinement on top of a full SCLS solve.

    Operates purely on cross-products: a sub-problem over endmember
    subset ``live`` and pixel rows ``rows`` needs only
    ``cross[rows][:, live]`` and ``gram[live][:, live]`` — identical
    floats to recomputing ``pix[rows] @ end[live].T`` from scratch,
    since every entry is the same pixel–endmember dot product.

    Mutates and returns ``result`` with all abundances non-negative.
    """
    n, k = result.shape
    bad = np.flatnonzero((result < -1e-12).any(axis=1))
    if bad.size == 0:
        np.maximum(result, 0.0, out=result)
        return result

    active = np.ones((n, k), dtype=bool)
    # Round 0 already solved the all-active case; record first drops.
    worst = np.argmin(result[bad], axis=1)
    active[bad, worst] = False
    todo = bad

    for _ in range(rounds):
        if todo.size == 0:
            break
        masks, inverse = np.unique(active[todo], axis=0, return_inverse=True)
        next_todo: list[np.ndarray] = []
        for m_idx in range(masks.shape[0]):
            mask = masks[m_idx]
            rows = todo[inverse == m_idx]
            live = np.flatnonzero(mask)
            if live.size == 0:
                raise ConvergenceError(
                    "FCLS active-set iteration emptied an active set"
                )
            sub_cross = cross[rows[:, None], live[None, :]]
            sub_ginv = _reg_inverse(gram[live[:, None], live[None, :]], ridge)
            sub = _scls_from_cross(sub_cross, sub_ginv)
            feasible = ~(sub < -1e-12).any(axis=1)
            done_rows = rows[feasible]
            if done_rows.size:
                result[done_rows] = 0.0
                result[done_rows[:, None], live[None, :]] = np.maximum(
                    sub[feasible], 0.0
                )
            bad_rows = rows[~feasible]
            if bad_rows.size:
                worst_local = np.argmin(sub[~feasible], axis=1)
                active[bad_rows, live[worst_local]] = False
                next_todo.append(bad_rows)
        todo = (
            np.concatenate(next_todo) if next_todo else np.empty(0, dtype=np.int64)
        )
    if todo.size:
        raise ConvergenceError(
            f"FCLS failed to converge for {todo.size} pixel(s) in "
            f"{rounds} rounds"
        )
    np.maximum(result, 0.0, out=result)
    return result


def ls_abundances(
    pixels: FloatArray, endmembers: FloatArray, ridge: float = 1e-10
) -> FloatArray:
    """Unconstrained least-squares abundances → ``(n, k)``.

    Solves ``min_a ‖x − aᵀE‖²`` per pixel for endmember matrix ``E``
    (rows are signatures).
    """
    pix, end = _validate(pixels, endmembers)
    ginv = _gram_inverse(end, ridge)
    return pix @ end.T @ ginv


def scls_abundances(
    pixels: FloatArray, endmembers: FloatArray, ridge: float = 1e-10
) -> FloatArray:
    """Sum-to-one constrained least squares (closed form) → ``(n, k)``.

    Lagrange solution:
    ``a = a_ls − G⁻¹1 (1ᵀa_ls − 1) / (1ᵀG⁻¹1)`` with ``G = EEᵀ``.
    Abundances may still be negative; FCLS fixes that.
    """
    pix, end = _validate(pixels, endmembers)
    ginv = _gram_inverse(end, ridge)
    return _scls_from_cross(pix @ end.T, ginv)


def nnls_abundances(pixels: FloatArray, endmembers: FloatArray) -> FloatArray:
    """Non-negative least squares per pixel (scipy NNLS) → ``(n, k)``."""
    pix, end = _validate(pixels, endmembers)
    out = np.empty((pix.shape[0], end.shape[0]))
    design = np.ascontiguousarray(end.T)  # (bands, k)
    for i in range(pix.shape[0]):
        out[i], _ = scipy.optimize.nnls(design, pix[i])
    return out


def fcls_abundances(
    pixels: FloatArray,
    endmembers: FloatArray,
    ridge: float = 1e-10,
    max_iter: int | None = None,
) -> FloatArray:
    """Fully constrained (non-negative, sum-to-one) abundances → ``(n, k)``.

    Batched active-set iteration: each round groups the still-infeasible
    pixels by their active-endmember mask, runs one vectorized SCLS per
    distinct mask, and deactivates each pixel's most negative abundance.
    With ``k`` endmembers a pixel converges in at most ``k − 1`` drops,
    and the number of distinct masks stays tiny in practice, so the
    whole solve is a handful of batched linear-algebra calls rather than
    a per-pixel Python loop.
    """
    pix, end = _validate(pixels, endmembers)
    k = end.shape[0]
    rounds = max_iter if max_iter is not None else k + 1
    cross = pix @ end.T
    gram = end @ end.T
    result = _scls_from_cross(cross, _reg_inverse(gram, ridge))
    return _active_set_refine(result, cross, gram, ridge, rounds)


def reconstruction_error(
    pixels: FloatArray, endmembers: FloatArray, abundances: FloatArray
) -> FloatArray:
    """Per-pixel squared reconstruction error ``‖x − aᵀE‖²`` → ``(n,)``.

    This is the UFCLS 'error image' score: the pixel worst explained by
    the current target set becomes the next target.
    """
    pix, end = _validate(pixels, endmembers)
    ab = np.asarray(abundances, dtype=float)
    if ab.shape != (pix.shape[0], end.shape[0]):
        raise ShapeError(
            f"abundances shape {ab.shape} does not match "
            f"({pix.shape[0]}, {end.shape[0]})"
        )
    resid = pix - ab @ end
    return np.einsum("ij,ij->i", resid, resid)


class ScratchFCLS:
    """Reference UFCLS state: a from-scratch FCLS solve per error query.

    Presents the same ``add_target``/``error_image`` surface as
    :class:`IncrementalFCLS` (the ``fcls_solve`` registry protocol) but
    carries no cross-products or Gram inverse — every
    :meth:`error_image` call rebuilds the design matrix, solves
    :func:`fcls_abundances`, and forms the residual
    :func:`reconstruction_error` directly.  This is the rank-tolerant
    baseline: near-collinear target sets go through the one fully
    regularized solve instead of a bordering update plus guard, and the
    microbench verifies the incremental variant against the picks this
    one makes.  Batch-size independent, like the incremental state.
    """

    def __init__(self, pixels: FloatArray, ridge: float = 1e-10) -> None:
        pix = np.asarray(pixels, dtype=float)
        if pix.ndim == 1:
            pix = pix[None, :]
        if pix.ndim != 2:
            raise ShapeError(f"expected (n, bands), got {pix.shape}")
        self._pix = pix
        self._ridge = float(ridge)
        self._targets: list[FloatArray] = []

    @property
    def count(self) -> int:
        """Targets added so far."""
        return len(self._targets)

    def add_target(self, signature: FloatArray) -> None:
        """Append one target row (validated against the band count)."""
        sig = np.asarray(signature, dtype=float).reshape(-1)
        if sig.shape[0] != self._pix.shape[1]:
            raise ShapeError(
                f"signature has {sig.shape[0]} bands, "
                f"expected {self._pix.shape[1]}"
            )
        if not self._targets and float(sig @ sig) == 0.0:
            raise DataError("cannot add an all-zero first target")
        self._targets.append(sig)

    def abundances(self, max_iter: int | None = None) -> FloatArray:
        """FCLS abundances of every pixel against the current targets."""
        if not self._targets:
            raise DataError("need at least one endmember")
        end = np.vstack(self._targets)
        return fcls_abundances(self._pix, end, self._ridge, max_iter)

    def error_image(self, max_iter: int | None = None) -> FloatArray:
        """The UFCLS error image, formed from the explicit residual."""
        if not self._targets:
            raise DataError("need at least one endmember")
        end = np.vstack(self._targets)
        ab = fcls_abundances(self._pix, end, self._ridge, max_iter)
        return reconstruction_error(self._pix, end, ab)


class IncrementalFCLS:
    """Incremental UFCLS state: cross-products and the Gram inverse are
    carried across iterations as the target set grows one row at a time.

    Per added target this computes one ``pixels @ signature`` product
    (O(n·bands)) and a rank-1 *bordering* update of the regularized Gram
    inverse (O(t²)); the per-iteration FCLS error image is then solved
    entirely from cached cross-products — O(n·t²) instead of the
    from-scratch O(n·bands·t).  Because :func:`_reg_inverse` damps each
    diagonal entry independently of later additions, the bordered update
    inverts *exactly* the same matrix as the from-scratch path.

    Bypass: when the new target's Schur complement is not safely
    positive (a numerically dependent / near-collinear signature), the
    bordering update would amplify round-off, so the inverse is
    recomputed from scratch for that step instead.

    The per-pixel arithmetic is batch-size independent, so partitioned
    ranks reproduce a sequential pass bit-for-bit — the property the
    parallel/sequential equivalence tests pin.
    """

    #: Relative Schur-complement floor below which bordering falls back
    #: to a from-scratch inverse.
    SCHUR_GUARD = 1e-9

    def __init__(self, pixels: FloatArray, ridge: float = 1e-10) -> None:
        pix = np.asarray(pixels, dtype=float)
        if pix.ndim == 1:
            pix = pix[None, :]
        if pix.ndim != 2:
            raise ShapeError(f"expected (n, bands), got {pix.shape}")
        self._pix = pix
        self._ridge = float(ridge)
        self._total = np.einsum("ij,ij->i", pix, pix)
        self._end = np.empty((0, pix.shape[1]))
        self._cross = np.empty((pix.shape[0], 0))
        self._gram = np.empty((0, 0))
        self._minv = np.empty((0, 0))

    @property
    def count(self) -> int:
        """Targets added so far."""
        return self._end.shape[0]

    @property
    def gram_inverse(self) -> FloatArray:
        """The maintained inverse of the regularized Gram matrix."""
        return self._minv

    def add_target(self, signature: FloatArray) -> None:
        """Grow the target set by one signature (O(n·bands) + O(t²))."""
        sig = np.asarray(signature, dtype=float).reshape(-1)
        if sig.shape[0] != self._pix.shape[1]:
            raise ShapeError(
                f"signature has {sig.shape[0]} bands, "
                f"expected {self._pix.shape[1]}"
            )
        k = self.count
        b = self._end @ sig  # (k,) new Gram column
        c = float(sig @ sig)
        new_gram = np.empty((k + 1, k + 1))
        new_gram[:k, :k] = self._gram
        new_gram[:k, k] = b
        new_gram[k, :k] = b
        new_gram[k, k] = c
        damped_c = c + self._ridge * max(1.0, c)
        if k == 0:
            if damped_c == 0.0:
                raise DataError("cannot add an all-zero first target")
            minv = np.array([[1.0 / damped_c]])
        else:
            u = self._minv @ b
            schur = damped_c - float(b @ u)
            if schur <= self.SCHUR_GUARD * damped_c:
                # Bypass: near-collinear addition — bordering would
                # amplify round-off; rebuild the inverse from scratch.
                minv = _reg_inverse(new_gram, self._ridge)
            else:
                minv = np.empty((k + 1, k + 1))
                minv[:k, :k] = self._minv + np.outer(u, u) / schur
                minv[:k, k] = -u / schur
                minv[k, :k] = -u / schur
                minv[k, k] = 1.0 / schur
        self._gram = new_gram
        self._minv = minv
        self._end = np.vstack([self._end, sig[None, :]])
        self._cross = np.concatenate(
            [self._cross, (self._pix @ sig)[:, None]], axis=1
        )

    def abundances(self, max_iter: int | None = None) -> FloatArray:
        """FCLS abundances of every pixel against the current targets."""
        if self.count == 0:
            raise DataError("need at least one endmember")
        rounds = max_iter if max_iter is not None else self.count + 1
        result = _scls_from_cross(self._cross, self._minv)
        return _active_set_refine(
            result, self._cross, self._gram, self._ridge, rounds
        )

    def error_image(self, max_iter: int | None = None) -> FloatArray:
        """The UFCLS error image from cached products → ``(n,)``.

        Uses the expansion ``‖x − aᵀE‖² = ‖x‖² − 2a·(Ex) + aᵀGa`` so no
        O(n·bands) reconstruction is formed; clipped at zero to absorb
        the round-off the expansion admits where the residual vanishes.
        """
        ab = self.abundances(max_iter)
        err = (
            self._total
            - 2.0 * np.einsum("ij,ij->i", ab, self._cross)
            + np.einsum("ij,ij->i", ab @ self._gram, ab)
        )
        return np.maximum(err, 0.0)
