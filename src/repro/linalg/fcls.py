"""Least-squares linear unmixing solvers.

UFCLS (Algorithm 3) scores every pixel by the residual of its *fully
constrained* linear-mixture fit against the current target set: the
abundances must be non-negative and sum to one.  We provide the
unconstrained (LS), sum-to-one (SCLS, closed form via a Lagrange
multiplier), non-negative (NNLS), and fully constrained (FCLS,
Heinz–Chang style active-set iteration on top of SCLS) solvers, plus
the reconstruction-error map UFCLS consumes.

The FCLS path is vectorized over pixels: the SCLS solve is a single
batched linear-algebra expression, and only pixels whose solution went
negative enter the per-pixel active-set refinement.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from repro.errors import ConvergenceError, DataError, ShapeError
from repro.types import FloatArray

__all__ = [
    "ls_abundances",
    "scls_abundances",
    "nnls_abundances",
    "fcls_abundances",
    "reconstruction_error",
]


def _validate(pixels: FloatArray, endmembers: FloatArray) -> tuple[FloatArray, FloatArray]:
    pix = np.asarray(pixels, dtype=float)
    end = np.asarray(endmembers, dtype=float)
    if pix.ndim == 1:
        pix = pix[None, :]
    if end.ndim == 1:
        end = end[None, :]
    if pix.ndim != 2 or end.ndim != 2:
        raise ShapeError(
            f"pixels and endmembers must be 2-D, got {pix.shape} and {end.shape}"
        )
    if pix.shape[1] != end.shape[1]:
        raise ShapeError(
            f"band mismatch: pixels {pix.shape[1]} vs endmembers {end.shape[1]}"
        )
    if end.shape[0] == 0:
        raise DataError("need at least one endmember")
    return pix, end


def _gram_inverse(end: FloatArray, ridge: float) -> FloatArray:
    k = end.shape[0]
    gram = end @ end.T
    # A tiny ridge keeps near-collinear target sets (common once ATDCA/UFCLS
    # have extracted many similar spectra) numerically solvable.
    return np.linalg.inv(gram + ridge * np.eye(k) * max(1.0, np.trace(gram) / k))


def ls_abundances(
    pixels: FloatArray, endmembers: FloatArray, ridge: float = 1e-10
) -> FloatArray:
    """Unconstrained least-squares abundances → ``(n, k)``.

    Solves ``min_a ‖x − aᵀE‖²`` per pixel for endmember matrix ``E``
    (rows are signatures).
    """
    pix, end = _validate(pixels, endmembers)
    ginv = _gram_inverse(end, ridge)
    return pix @ end.T @ ginv


def scls_abundances(
    pixels: FloatArray, endmembers: FloatArray, ridge: float = 1e-10
) -> FloatArray:
    """Sum-to-one constrained least squares (closed form) → ``(n, k)``.

    Lagrange solution:
    ``a = a_ls − G⁻¹1 (1ᵀa_ls − 1) / (1ᵀG⁻¹1)`` with ``G = EEᵀ``.
    Abundances may still be negative; FCLS fixes that.
    """
    pix, end = _validate(pixels, endmembers)
    ginv = _gram_inverse(end, ridge)
    a_ls = pix @ end.T @ ginv  # (n, k)
    ones = np.ones(end.shape[0])
    ginv_one = ginv @ ones  # (k,)
    denom = float(ones @ ginv_one)
    if abs(denom) < 1e-300:
        raise DataError("sum-to-one constraint is degenerate for these endmembers")
    correction = (a_ls.sum(axis=1) - 1.0) / denom
    return a_ls - correction[:, None] * ginv_one[None, :]


def nnls_abundances(pixels: FloatArray, endmembers: FloatArray) -> FloatArray:
    """Non-negative least squares per pixel (scipy NNLS) → ``(n, k)``."""
    pix, end = _validate(pixels, endmembers)
    out = np.empty((pix.shape[0], end.shape[0]))
    design = np.ascontiguousarray(end.T)  # (bands, k)
    for i in range(pix.shape[0]):
        out[i], _ = scipy.optimize.nnls(design, pix[i])
    return out


def fcls_abundances(
    pixels: FloatArray,
    endmembers: FloatArray,
    ridge: float = 1e-10,
    max_iter: int | None = None,
) -> FloatArray:
    """Fully constrained (non-negative, sum-to-one) abundances → ``(n, k)``.

    Batched active-set iteration: each round groups the still-infeasible
    pixels by their active-endmember mask, runs one vectorized SCLS per
    distinct mask, and deactivates each pixel's most negative abundance.
    With ``k`` endmembers a pixel converges in at most ``k − 1`` drops,
    and the number of distinct masks stays tiny in practice, so the
    whole solve is a handful of batched linear-algebra calls rather than
    a per-pixel Python loop.
    """
    pix, end = _validate(pixels, endmembers)
    n, k = pix.shape[0], end.shape[0]
    rounds = max_iter if max_iter is not None else k + 1
    result = scls_abundances(pix, end, ridge)
    bad = np.flatnonzero((result < -1e-12).any(axis=1))
    if bad.size == 0:
        np.maximum(result, 0.0, out=result)
        return result

    active = np.ones((n, k), dtype=bool)
    # Round 0 already solved the all-active case; record first drops.
    worst = np.argmin(result[bad], axis=1)
    active[bad, worst] = False
    todo = bad

    for _ in range(rounds):
        if todo.size == 0:
            break
        masks, inverse = np.unique(active[todo], axis=0, return_inverse=True)
        next_todo: list[np.ndarray] = []
        for m_idx in range(masks.shape[0]):
            mask = masks[m_idx]
            rows = todo[inverse == m_idx]
            live = np.flatnonzero(mask)
            if live.size == 0:
                raise ConvergenceError(
                    "FCLS active-set iteration emptied an active set"
                )
            sub = scls_abundances(pix[rows], end[live], ridge)
            feasible = ~(sub < -1e-12).any(axis=1)
            done_rows = rows[feasible]
            if done_rows.size:
                result[done_rows] = 0.0
                result[done_rows[:, None], live[None, :]] = np.maximum(
                    sub[feasible], 0.0
                )
            bad_rows = rows[~feasible]
            if bad_rows.size:
                worst_local = np.argmin(sub[~feasible], axis=1)
                active[bad_rows, live[worst_local]] = False
                next_todo.append(bad_rows)
        todo = (
            np.concatenate(next_todo) if next_todo else np.empty(0, dtype=np.int64)
        )
    if todo.size:
        raise ConvergenceError(
            f"FCLS failed to converge for {todo.size} pixel(s) in "
            f"{rounds} rounds"
        )
    np.maximum(result, 0.0, out=result)
    return result


def reconstruction_error(
    pixels: FloatArray, endmembers: FloatArray, abundances: FloatArray
) -> FloatArray:
    """Per-pixel squared reconstruction error ``‖x − aᵀE‖²`` → ``(n,)``.

    This is the UFCLS 'error image' score: the pixel worst explained by
    the current target set becomes the next target.
    """
    pix, end = _validate(pixels, endmembers)
    ab = np.asarray(abundances, dtype=float)
    if ab.shape != (pix.shape[0], end.shape[0]):
        raise ShapeError(
            f"abundances shape {ab.shape} does not match "
            f"({pix.shape[0]}, {end.shape[0]})"
        )
    resid = pix - ab @ end
    return np.einsum("ij,ij->i", resid, resid)
