"""Orthogonal subspace projection (OSP) kernels.

ATDCA (Algorithm 2) repeatedly projects every pixel onto the orthogonal
complement of the span of the targets found so far,
``P^⊥_U = I − U (UᵀU)⁻¹ Uᵀ``, and picks the pixel with the largest
projected energy.  Forming the ``N×N`` projector explicitly is O(N²)
memory and O(npix·N²) time; we instead keep an orthonormal basis ``Q``
of span(U) and evaluate the projected energy as
``‖x‖² − ‖Qᵀx‖²``, which is O(npix·N·t) — the textbook algebraic
identity, exact up to round-off.  :func:`osp_projector` still builds the
explicit projector for tests and small problems.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError, ShapeError
from repro.types import FloatArray

__all__ = [
    "osp_projector",
    "orthonormal_basis",
    "projected_energy",
    "residual_energy",
    "brightest_pixel_index",
]


def _as_matrix(u: FloatArray) -> FloatArray:
    mat = np.asarray(u, dtype=float)
    if mat.ndim == 1:
        mat = mat[None, :]
    if mat.ndim != 2:
        raise ShapeError(f"U must be (t, bands), got shape {mat.shape}")
    return mat


def osp_projector(u: FloatArray, rcond: float = 1e-10) -> FloatArray:
    """The explicit orthogonal-complement projector ``I − Uᵀ(UUᵀ)⁻¹U``.

    Args:
        u: target matrix, ``(t, bands)`` — rows are signatures (the
            paper writes U as t×N).
        rcond: cutoff for the pseudo-inverse (rank-deficient U is fine).

    Returns:
        ``(bands, bands)`` symmetric idempotent matrix.
    """
    mat = _as_matrix(u)
    bands = mat.shape[1]
    pinv = np.linalg.pinv(mat @ mat.T, rcond=rcond, hermitian=True)
    return np.eye(bands) - mat.T @ pinv @ mat


def orthonormal_basis(u: FloatArray, tol: float = 1e-10) -> FloatArray:
    """An orthonormal basis of span(rows of U) via thin QR → ``(bands, r)``.

    Columns span the same subspace as U's rows; rank-deficient inputs
    are reduced (columns with negligible R diagonal dropped).
    """
    mat = _as_matrix(u)
    q, r = np.linalg.qr(mat.T)  # (bands, t), (t, t)
    keep = np.abs(np.diag(r)) > tol * max(1.0, float(np.abs(r).max()))
    basis = q[:, keep]
    if basis.shape[1] == 0:
        raise DataError("target matrix U has rank zero")
    return basis


def projected_energy(pixels: FloatArray, basis: FloatArray) -> FloatArray:
    """Energy of each pixel after projecting *onto* span(basis columns).

    ``pixels`` is ``(n, bands)``; returns ``(n,)`` of ``‖Qᵀx‖²``.
    """
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim == 1:
        pix = pix[None, :]
    if pix.shape[1] != basis.shape[0]:
        raise ShapeError(
            f"pixels have {pix.shape[1]} bands, basis expects {basis.shape[0]}"
        )
    coeff = pix @ basis  # (n, r)
    return np.einsum("ij,ij->i", coeff, coeff)


def residual_energy(pixels: FloatArray, u: FloatArray | None) -> FloatArray:
    """OSP score per pixel: ``‖P^⊥_U x‖²`` (total energy if U is None).

    This is the quantity maximized in ATDCA steps 2 and 4.  Computed as
    ``‖x‖² − ‖Qᵀx‖²`` with Q an orthonormal basis of span(U); clipped at
    zero to absorb round-off.
    """
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim == 1:
        pix = pix[None, :]
    total = np.einsum("ij,ij->i", pix, pix)
    if u is None:
        return total
    basis = orthonormal_basis(u)
    return np.maximum(total - projected_energy(pix, basis), 0.0)


def brightest_pixel_index(pixels: FloatArray) -> int:
    """Index of the pixel with the largest ``xᵀx`` (ATDCA's seed)."""
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim != 2 or pix.shape[0] == 0:
        raise ShapeError(f"expected non-empty (n, bands), got {pix.shape}")
    return int(np.argmax(np.einsum("ij,ij->i", pix, pix)))
