"""Orthogonal subspace projection (OSP) kernels.

ATDCA (Algorithm 2) repeatedly projects every pixel onto the orthogonal
complement of the span of the targets found so far,
``P^⊥_U = I − U (UᵀU)⁻¹ Uᵀ``, and picks the pixel with the largest
projected energy.  Forming the ``N×N`` projector explicitly is O(N²)
memory and O(npix·N²) time; we instead keep an orthonormal basis ``Q``
of span(U) and evaluate the projected energy as
``‖x‖² − ‖Qᵀx‖²``, which is O(npix·N·t) — the textbook algebraic
identity, exact up to round-off.  :func:`osp_projector` still builds the
explicit projector for tests and small problems.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError, ShapeError
from repro.types import FloatArray

__all__ = [
    "osp_projector",
    "orthonormal_basis",
    "projected_energy",
    "residual_energy",
    "brightest_pixel_index",
    "IncrementalOSP",
    "ScratchOSP",
]


def _as_matrix(u: FloatArray) -> FloatArray:
    mat = np.asarray(u, dtype=float)
    if mat.ndim == 1:
        mat = mat[None, :]
    if mat.ndim != 2:
        raise ShapeError(f"U must be (t, bands), got shape {mat.shape}")
    return mat


def osp_projector(u: FloatArray, rcond: float = 1e-10) -> FloatArray:
    """The explicit orthogonal-complement projector ``I − Uᵀ(UUᵀ)⁻¹U``.

    Args:
        u: target matrix, ``(t, bands)`` — rows are signatures (the
            paper writes U as t×N).
        rcond: cutoff for the pseudo-inverse (rank-deficient U is fine).

    Returns:
        ``(bands, bands)`` symmetric idempotent matrix.
    """
    mat = _as_matrix(u)
    bands = mat.shape[1]
    pinv = np.linalg.pinv(mat @ mat.T, rcond=rcond, hermitian=True)
    return np.eye(bands) - mat.T @ pinv @ mat


def orthonormal_basis(u: FloatArray, tol: float = 1e-10) -> FloatArray:
    """An orthonormal basis of span(rows of U) via thin QR → ``(bands, r)``.

    Columns span the same subspace as U's rows; rank-deficient inputs
    are reduced (columns with negligible R diagonal dropped).
    """
    mat = _as_matrix(u)
    q, r = np.linalg.qr(mat.T)  # (bands, t), (t, t)
    keep = np.abs(np.diag(r)) > tol * max(1.0, float(np.abs(r).max()))
    if not keep.all():
        # Unpivoted QR cannot simply drop zero-diagonal columns: a row
        # that is dependent on *earlier* rows zeroes its diagonal, but
        # later independent rows still carry components along the
        # arbitrary Q columns LAPACK filled in there (R[i, j] ≠ 0 for
        # j > i), so filtering would discard genuine span.  Rank
        # deficiency is rare, so only then pay for the SVD, which
        # orders directions by singular value and cuts cleanly.
        q, s, _ = np.linalg.svd(mat.T, full_matrices=False)
        keep = s > tol * max(1.0, float(s[0])) if s.size else s.astype(bool)
    basis = q[:, keep]
    if basis.shape[1] == 0:
        raise DataError("target matrix U has rank zero")
    return basis


def projected_energy(pixels: FloatArray, basis: FloatArray) -> FloatArray:
    """Energy of each pixel after projecting *onto* span(basis columns).

    ``pixels`` is ``(n, bands)``; returns ``(n,)`` of ``‖Qᵀx‖²``.
    """
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim == 1:
        pix = pix[None, :]
    if pix.shape[1] != basis.shape[0]:
        raise ShapeError(
            f"pixels have {pix.shape[1]} bands, basis expects {basis.shape[0]}"
        )
    coeff = pix @ basis  # (n, r)
    return np.einsum("ij,ij->i", coeff, coeff)


def residual_energy(pixels: FloatArray, u: FloatArray | None) -> FloatArray:
    """OSP score per pixel: ``‖P^⊥_U x‖²`` (total energy if U is None).

    This is the quantity maximized in ATDCA steps 2 and 4.  Computed as
    ``‖x‖² − ‖Qᵀx‖²`` with Q an orthonormal basis of span(U); clipped at
    zero to absorb round-off.
    """
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim == 1:
        pix = pix[None, :]
    total = np.einsum("ij,ij->i", pix, pix)
    if u is None:
        return total
    basis = orthonormal_basis(u)
    return np.maximum(total - projected_energy(pix, basis), 0.0)


class IncrementalOSP:
    """Incrementally maintained OSP residual energies for a fixed pixel set.

    ATDCA's loop evaluates ``‖P^⊥_U x‖²`` for a target matrix that grows
    by one row per iteration.  Recomputing from scratch costs one QR plus
    an ``(n, bands) × (bands, t)`` product per iteration —
    O(n·bands·t²) over the whole run.  This class keeps the orthonormal
    basis across iterations (one modified-Gram–Schmidt step per new
    target) and updates the residual energies by subtracting only the
    new basis direction's coefficients: O(n·bands) per iteration,
    O(n·bands·t) total.

    Exactness: the maintained residuals equal
    :func:`residual_energy` up to round-off (the Pythagorean update is
    the same algebraic identity evaluated one column at a time), and the
    basis spans the same subspace as the from-scratch QR.  The update is
    *bypassed* (no new column) when a target is numerically dependent on
    the span so far — mirroring the rank reduction in
    :func:`orthonormal_basis`.

    The per-pixel arithmetic is independent of how pixels are batched,
    so ranks holding row-partitions of a scene compute bit-identical
    scores to a sequential pass over the whole scene — the property the
    parallel/sequential equivalence tests pin.
    """

    def __init__(self, pixels: FloatArray, tol: float = 1e-10) -> None:
        pix = np.asarray(pixels, dtype=float)
        if pix.ndim != 2:
            raise ShapeError(f"expected (n, bands), got {pix.shape}")
        self._pix = pix
        self._tol = float(tol)
        self._bands = pix.shape[1]
        #: columns are the orthonormal basis vectors, in insertion order.
        self._q: list[FloatArray] = []
        self._residual = np.einsum("ij,ij->i", pix, pix)

    @property
    def n_directions(self) -> int:
        """Independent directions absorbed so far (the basis rank)."""
        return len(self._q)

    @property
    def basis(self) -> FloatArray:
        """The ``(bands, r)`` orthonormal basis accumulated so far."""
        if not self._q:
            return np.empty((self._bands, 0))
        return np.stack(self._q, axis=1)

    def add_target(self, signature: FloatArray) -> bool:
        """Fold one new target into the basis and the residual energies.

        One modified-Gram–Schmidt step (with re-orthogonalization, for
        accuracy on near-collinear target sets), then one
        ``pixels @ q`` product.  Returns ``False`` — the bypass — when
        the signature is numerically inside the current span, in which
        case neither basis nor residuals change (matching the QR rank
        cutoff of :func:`orthonormal_basis`).
        """
        sig = np.asarray(signature, dtype=float).reshape(-1)
        if sig.shape[0] != self._bands:
            raise ShapeError(
                f"signature has {sig.shape[0]} bands, expected {self._bands}"
            )
        scale = float(np.linalg.norm(sig))
        if scale == 0.0:
            return False
        v = sig.astype(float, copy=True)
        # Two MGS sweeps: the second repairs the cancellation a single
        # sweep suffers when the target is nearly in the span already.
        for _ in range(2):
            for q in self._q:
                v -= (q @ v) * q
        norm = float(np.linalg.norm(v))
        if norm <= self._tol * max(1.0, scale):
            return False
        q_new = v / norm
        self._q.append(q_new)
        coeff = self._pix @ q_new
        self._residual -= coeff * coeff
        return True

    def residual_energy(self) -> FloatArray:
        """Current ``‖P^⊥_U x‖²`` per pixel, clipped at zero (round-off)."""
        return np.maximum(self._residual, 0.0)


class ScratchOSP:
    """Reference OSP state: a full QR sweep per residual query.

    Presents the same ``add_target``/``residual_energy`` surface as
    :class:`IncrementalOSP` (the ``osp_step`` registry protocol) but
    keeps no basis across iterations — every :meth:`residual_energy`
    call evaluates :func:`residual_energy` against the accumulated
    target matrix from scratch.  This is the rank-tolerant baseline the
    planner routes degenerate inputs to: rank-deficient target sets go
    through :func:`orthonormal_basis`'s SVD cut every query instead of
    an incremental bypass, and the microbench verifies every fast
    variant against the picks this one makes.

    Like the incremental state, the arithmetic is batch-size
    independent, so partitioned ranks reproduce a sequential pass.
    """

    def __init__(self, pixels: FloatArray, tol: float = 1e-10) -> None:
        pix = np.asarray(pixels, dtype=float)
        if pix.ndim != 2:
            raise ShapeError(f"expected (n, bands), got {pix.shape}")
        self._pix = pix
        self._bands = pix.shape[1]
        self._tol = float(tol)
        self._targets: list[FloatArray] = []

    @property
    def n_directions(self) -> int:
        """Rank of the accumulated target matrix (scratch QR/SVD)."""
        if not self._targets:
            return 0
        try:
            basis = orthonormal_basis(np.vstack(self._targets), self._tol)
        except DataError:  # all-zero target matrix
            return 0
        return int(basis.shape[1])

    def add_target(self, signature: FloatArray) -> bool:
        """Append one target row; returns ``True`` iff it grew the rank."""
        sig = np.asarray(signature, dtype=float).reshape(-1)
        if sig.shape[0] != self._bands:
            raise ShapeError(
                f"signature has {sig.shape[0]} bands, expected {self._bands}"
            )
        before = self.n_directions
        self._targets.append(sig)
        if self.n_directions == before:
            self._targets.pop()
            return False
        return True

    def residual_energy(self) -> FloatArray:
        """``‖P^⊥_U x‖²`` per pixel, recomputed from scratch."""
        u = np.vstack(self._targets) if self._targets else None
        return residual_energy(self._pix, u)


def brightest_pixel_index(pixels: FloatArray) -> int:
    """Index of the pixel with the largest ``xᵀx`` (ATDCA's seed)."""
    pix = np.asarray(pixels, dtype=float)
    if pix.ndim != 2 or pix.shape[0] == 0:
        raise ShapeError(f"expected non-empty (n, bands), got {pix.shape}")
    return int(np.argmax(np.einsum("ij,ij->i", pix, pix)))
