"""Unified kernel registry + cost-model-driven autotuning planner.

Two layers with a deliberate split (DESIGN decision 19):

* :mod:`repro.tuning.registry` — *what can run*: every hot kernel
  (OSP step, FCLS solve, MORPH MEI map, N-FINDR screen, unique-survivor
  filter) registers its implementation variants with capability
  metadata (exactness class, memory footprint, preconditions such as
  rank-deficiency tolerance).  The registry holds no policy — it only
  answers "which variants exist and what do they guarantee".
* :mod:`repro.tuning.planner` — *what should run*: consumes the
  calibrated compute/transfer scales from
  ``benchmarks/baselines/calibration.json`` plus the analytic platform
  model to pick, per run, the kernel variant, WEA partition variant,
  and checkpoint cadence minimizing predicted makespan.  Every plan
  ships with its prediction so the sweep gate can check it against the
  executed run.

This module re-exports the registry API only; import
``repro.tuning.planner`` explicitly for planning (it pulls in the
runner layer, which itself dispatches through the registry — importing
it here would create a cycle).
"""

from repro.tuning.registry import (
    KERNEL_NAMES,
    KernelVariant,
    default_variant,
    reference_variant,
    register,
    resolve,
    variants_of,
)

__all__ = [
    "KERNEL_NAMES",
    "KernelVariant",
    "default_variant",
    "reference_variant",
    "register",
    "resolve",
    "variants_of",
]
