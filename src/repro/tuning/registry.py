"""The kernel-variant registry: one dispatch seam for every hot kernel.

PR 5 introduced fast paths (incremental OSP/FCLS state, the
pair-compressed MEI map, the batched N-FINDR cofactor screen, the
vectorized unique-survivor filter) but wired each one ad hoc: every
algorithm hand-picked its implementation at the call site.  This module
replaces those hard-wired choices with a registry: each kernel's
variants are registered with **capability metadata** — exactness class,
memory footprint, and preconditions such as rank-deficiency tolerance —
and callers resolve a variant *by name*, with the planner
(:mod:`repro.tuning.planner`) choosing the name from the metadata and
the microbench (:mod:`repro.obs.microbench`) enumerating all of them
against the reference.

Implementation protocols (what ``KernelVariant.implementation()``
returns) per kernel:

==================  ========================================================
``osp_step``        a class ``C(pixels)`` with ``add_target(sig) -> bool``
                    and ``residual_energy() -> (n,)``
``fcls_solve``      a class ``C(pixels)`` with ``add_target(sig)`` and
                    ``error_image(max_iter=None) -> (n,)``
``morph_mei``       ``f(cube, se, iterations) -> (rows, cols)``
``nfindr_screen``   ``f(reduced, aug, current, volume, k)
                    -> (current, volume, improved)``
``unique_filter``   ``f(pixels, threshold, max_keep=None) -> UniqueSet``
==================  ========================================================

Factories import their implementations lazily so this module has **no**
top-level dependency on :mod:`repro.core` / :mod:`repro.linalg` — core
modules import the registry at module scope to dispatch through it, and
eager imports here would complete that cycle.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = [
    "KERNEL_NAMES",
    "KernelVariant",
    "register",
    "variants_of",
    "resolve",
    "reference_variant",
    "default_variant",
]

#: Every registered hot kernel, in registration order.
KERNEL_NAMES: tuple[str, ...] = (
    "osp_step",
    "fcls_solve",
    "morph_mei",
    "nfindr_screen",
    "unique_filter",
)


@dataclasses.dataclass(frozen=True)
class KernelVariant:
    """One registered implementation of a kernel.

    Attributes:
        kernel: which kernel this implements (one of
            :data:`KERNEL_NAMES`).
        name: variant name; ``"reference"`` is reserved for the scratch
            baseline every other variant is verified against.
        exactness: ``"bit_identical"`` (same floats as the reference) or
            ``"pick_identical"`` (same discrete selections — target
            indices — with scores equal up to round-off).
        memory: footprint class of the carried state, as a human-readable
            expression (``n`` pixels, ``b`` bands, ``t`` targets).
        rank_tolerant: whether the variant's numerics are the primary,
            fully-exercised path for rank-deficient / near-collinear
            target sets.  Fast variants carry bypass guards but the
            planner routes degenerate inputs to the reference paths.
        min_pixels: smallest pixel count at which the variant's carried
            state pays for itself; the planner falls back to the
            reference below it (tiny scenes).
        speed_hint: coarse expected speedup over the reference, used
            only to order eligible variants (the microbench measures
            the truth; a hint > 1 marks a fast path).
        factory: zero-argument callable returning the implementation
            (lazily imported — see the module docstring).
    """

    kernel: str
    name: str
    exactness: str
    memory: str
    rank_tolerant: bool
    min_pixels: int
    speed_hint: float
    factory: Callable[[], Any]

    def implementation(self) -> Any:
        """Resolve the implementation callable/class (lazy import)."""
        return self.factory()


#: kernel -> {variant name -> KernelVariant}, insertion-ordered.
_REGISTRY: dict[str, dict[str, KernelVariant]] = {}


def register(variant: KernelVariant) -> KernelVariant:
    """Add a variant; re-registering a (kernel, name) pair replaces it."""
    _REGISTRY.setdefault(variant.kernel, {})[variant.name] = variant
    return variant


def variants_of(kernel: str) -> tuple[KernelVariant, ...]:
    """All variants of ``kernel``, in registration order."""
    try:
        return tuple(_REGISTRY[kernel].values())
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def resolve(kernel: str, name: str) -> KernelVariant:
    """The variant registered as ``name`` for ``kernel``."""
    table = _REGISTRY.get(kernel)
    if table is None:
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; registered: {sorted(_REGISTRY)}"
        )
    variant = table.get(name)
    if variant is None:
        raise ConfigurationError(
            f"kernel {kernel!r} has no variant {name!r}; "
            f"registered: {sorted(table)}"
        )
    return variant


def reference_variant(kernel: str) -> KernelVariant:
    """The kernel's scratch baseline (always registered first)."""
    return resolve(kernel, "reference")


def default_variant(kernel: str) -> KernelVariant:
    """The fastest registered variant (highest ``speed_hint``; ties go
    to the earlier registration) — what an unplanned run dispatches to,
    preserving pre-registry behaviour."""
    best = None
    for variant in variants_of(kernel):
        if best is None or variant.speed_hint > best.speed_hint:
            best = variant
    assert best is not None  # variants_of raises on unknown kernels
    return best


# -- default registrations ----------------------------------------------------
#
# Factories import lazily; see the module docstring for why.

def _osp_reference() -> Any:
    from repro.linalg.osp import ScratchOSP

    return ScratchOSP


def _osp_incremental() -> Any:
    from repro.linalg.osp import IncrementalOSP

    return IncrementalOSP


def _fcls_reference() -> Any:
    from repro.linalg.fcls import ScratchFCLS

    return ScratchFCLS


def _fcls_incremental() -> Any:
    from repro.linalg.fcls import IncrementalFCLS

    return IncrementalFCLS


def _mei_reference() -> Any:
    from repro.core.morph import mei_map_reference

    return mei_map_reference


def _mei_paired() -> Any:
    from repro.core.morph import mei_map

    return mei_map


def _nfindr_reference() -> Any:
    from repro.core.nfindr import _sweep_scalar

    def screen_reference(reduced, aug, current, volume, k):
        # The scalar sweep never needs the precomputed augmented matrix.
        return _sweep_scalar(reduced, current, volume, k)

    return screen_reference


def _nfindr_batched() -> Any:
    from repro.core.nfindr import _replacement_sweep

    return _replacement_sweep


def _unique_reference() -> Any:
    from repro.core.unique import greedy_unique_reference

    return greedy_unique_reference


def _unique_vectorized() -> Any:
    from repro.core.unique import greedy_unique

    return greedy_unique


def _register_defaults() -> None:
    register(KernelVariant(
        kernel="osp_step", name="reference", exactness="pick_identical",
        memory="O(n + t·b)", rank_tolerant=True, min_pixels=0,
        speed_hint=1.0, factory=_osp_reference,
    ))
    register(KernelVariant(
        kernel="osp_step", name="incremental", exactness="pick_identical",
        memory="O(n + t·b)", rank_tolerant=False, min_pixels=64,
        speed_hint=8.0, factory=_osp_incremental,
    ))
    register(KernelVariant(
        kernel="fcls_solve", name="reference", exactness="pick_identical",
        memory="O(n·t)", rank_tolerant=True, min_pixels=0,
        speed_hint=1.0, factory=_fcls_reference,
    ))
    register(KernelVariant(
        kernel="fcls_solve", name="incremental", exactness="pick_identical",
        memory="O(n·t + t²)", rank_tolerant=False, min_pixels=64,
        speed_hint=3.0, factory=_fcls_incremental,
    ))
    register(KernelVariant(
        kernel="morph_mei", name="reference", exactness="bit_identical",
        memory="O(n·b)", rank_tolerant=True, min_pixels=0,
        speed_hint=1.0, factory=_mei_reference,
    ))
    register(KernelVariant(
        kernel="morph_mei", name="paired", exactness="bit_identical",
        memory="O(n·|B|)", rank_tolerant=True, min_pixels=64,
        speed_hint=2.0, factory=_mei_paired,
    ))
    register(KernelVariant(
        kernel="nfindr_screen", name="reference", exactness="bit_identical",
        memory="O(k²)", rank_tolerant=True, min_pixels=0,
        speed_hint=1.0, factory=_nfindr_reference,
    ))
    register(KernelVariant(
        kernel="nfindr_screen", name="batched", exactness="bit_identical",
        memory="O(n·k)", rank_tolerant=False, min_pixels=64,
        speed_hint=20.0, factory=_nfindr_batched,
    ))
    register(KernelVariant(
        kernel="unique_filter", name="reference", exactness="bit_identical",
        memory="O(k·b)", rank_tolerant=True, min_pixels=0,
        speed_hint=1.0, factory=_unique_reference,
    ))
    register(KernelVariant(
        kernel="unique_filter", name="vectorized", exactness="bit_identical",
        memory="O(n + k·b)", rank_tolerant=True, min_pixels=64,
        speed_hint=10.0, factory=_unique_vectorized,
    ))


_register_defaults()
