"""Cost-model-driven autotuning planner.

Consumes the calibrated compute/transfer scales from the committed
calibration baseline (``benchmarks/baselines/calibration.json``) plus
the analytic platform model (:func:`repro.experiments.model.model_run`,
the same op-program engine the what-if replay executes) and picks, per
run, the configuration minimizing predicted makespan:

* the **WEA partition variant** (``hetero``/``dlt``/``homo``) — each
  candidate is partitioned via
  :func:`repro.core.runner.make_row_partition_for_dims` and priced by
  ``model_run`` under the calibration-scaled cost model;
* the **kernel variants** — resolved from the registry's capability
  metadata: preconditions first (rank-deficient target sets and tiny
  scenes fall back to the rank-tolerant reference paths), then the
  fastest eligible variant;
* the **checkpoint cadence** — in-memory detection checkpoints charge
  zero model cost, so the densest cadence (every iteration) dominates:
  it minimizes recovery replay without any predicted makespan penalty.

Every plan ships with its prediction (*and* the default variant's
prediction, so improvement claims are checkable), plus the scale
provenance from the calibration baseline — commit, date, and source
ledger — making each planner decision auditable in ``analysis.json``.

Because the default partition variant is always in the candidate set and
ties break toward it in candidate order, the chosen plan's predicted
makespan is ≤ the default's **by construction**; the ``bench plan`` gate
(:mod:`repro.obs.bench`) additionally checks the prediction against the
executed run (≤ 1e-9 relative error on the virtual-time backend) and the
measured improvement against the committed floor.

This module is deliberately *not* re-exported from
:mod:`repro.tuning` — it imports the runner layer, which dispatches
through the registry, and an eager import would complete that cycle.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping

from repro.cluster.costs import DEFAULT_COST_MODEL, CostModel
from repro.cluster.platform import HeterogeneousPlatform
from repro.core.runner import ALGORITHM_NAMES, make_row_partition_for_dims
from repro.errors import ConfigurationError
from repro.experiments.model import model_run
from repro.obs.health import scales_from_calibration
from repro.scheduling.static_part import RowPartition
from repro.tuning.registry import KernelVariant, default_variant, variants_of

__all__ = [
    "PLAN_SCHEMA",
    "PARTITION_VARIANTS",
    "DEFAULT_CALIBRATION",
    "ALGORITHM_KERNELS",
    "choose_kernel_variants",
    "TuningPlan",
    "plan_run",
]

#: Schema tag stamped into every serialized plan document.
PLAN_SCHEMA = "repro.tuning.plan/1"

#: Candidate WEA partition variants, in tie-break order.
PARTITION_VARIANTS: tuple[str, ...] = ("hetero", "dlt", "homo")

#: The committed calibration baseline (repo-relative).
DEFAULT_CALIBRATION = "benchmarks/baselines/calibration.json"

#: Which registered kernels each algorithm dispatches through.
ALGORITHM_KERNELS: Mapping[str, tuple[str, ...]] = {
    "atdca": ("osp_step",),
    "ufcls": ("fcls_solve",),
    "pct": ("unique_filter",),
    "morph": ("morph_mei", "unique_filter"),
}


def _eligible(
    variant: KernelVariant, n_pixels: int, rank_deficient: bool
) -> bool:
    if n_pixels < variant.min_pixels:
        return False
    if rank_deficient and not variant.rank_tolerant:
        return False
    return True


def choose_kernel_variants(
    algorithm: str,
    n_pixels: int,
    bands: int,
    params: Mapping[str, Any],
) -> dict[str, str]:
    """Pick one registry variant per kernel the algorithm uses.

    Preconditions filter first: variants whose ``min_pixels`` exceeds the
    scene (tiny inputs), and — for the target detectors — variants not
    ``rank_tolerant`` when the requested target count exceeds the band
    count (the target matrix is then certainly rank-deficient, so the
    degenerate-input paths must be primary).  Among eligible variants the
    highest ``speed_hint`` wins.  The rank-tolerant reference always
    passes both filters, so the choice never comes up empty.
    """
    kernels = ALGORITHM_KERNELS.get(algorithm)
    if kernels is None:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{ALGORITHM_NAMES}"
        )
    rank_deficient = False
    if algorithm in ("atdca", "ufcls"):
        rank_deficient = int(params.get("n_targets", 18)) > int(bands)
    chosen: dict[str, str] = {}
    for kernel in kernels:
        best: KernelVariant | None = None
        for variant in variants_of(kernel):
            if not _eligible(variant, n_pixels, rank_deficient):
                continue
            if best is None or variant.speed_hint > best.speed_hint:
                best = variant
        assert best is not None  # the reference is always eligible
        chosen[kernel] = best.name
    return chosen


@dataclasses.dataclass(frozen=True)
class TuningPlan:
    """One planner decision, with its checkable prediction.

    Attributes:
        algorithm / backend / rows / cols / bands: the planned workload.
        platform_name / platform_size: identity of the planned platform
            (plans are validated against the run's platform at dispatch).
        partition_variant: the chosen WEA variant.
        partition_counts: the chosen partition's per-rank row counts.
        kernels: kernel name → chosen registry variant name.
        checkpoint_every: checkpoint cadence for the iterative detectors.
        predicted_makespan_s: ``model_run`` total under the calibrated
            cost model for the chosen configuration.
        candidates: partition variant → predicted makespan, for every
            candidate evaluated (auditable alternatives).
        default_variant / default_predicted_s: the static default this
            plan is measured against.
        scales: the calibrated ``{"compute", "transfer"}`` multipliers
            applied to the cost model.
        scale_provenance: where the scales came from (``git_sha`` /
            ``date`` / ``source`` from the calibration baseline), or
            ``None`` when the baseline carries no provenance block.
        params: scalar algorithm parameters the plan was made for.
    """

    algorithm: str
    backend: str
    rows: int
    cols: int
    bands: int
    platform_name: str
    platform_size: int
    partition_variant: str
    partition_counts: tuple[int, ...]
    kernels: Mapping[str, str]
    checkpoint_every: int
    predicted_makespan_s: float
    candidates: Mapping[str, float]
    default_variant: str
    default_predicted_s: float
    scales: Mapping[str, float]
    scale_provenance: Mapping[str, Any] | None
    params: Mapping[str, Any]

    @property
    def improvement(self) -> float:
        """Predicted default/chosen makespan ratio (≥ 1 by construction)."""
        if self.predicted_makespan_s <= 0:
            return 1.0
        return self.default_predicted_s / self.predicted_makespan_s

    def row_partition(self) -> RowPartition:
        """The planned partition as an executable :class:`RowPartition`."""
        return RowPartition(self.partition_counts)

    def program_kwargs(self, algorithm: str) -> dict[str, Any]:
        """Kernel-dispatch kwargs for the algorithm's SPMD program."""
        if algorithm != self.algorithm:
            raise ConfigurationError(
                f"plan is for {self.algorithm!r}, not {algorithm!r}"
            )
        out: dict[str, Any] = {}
        if algorithm == "atdca":
            out["osp_variant"] = self.kernels["osp_step"]
        elif algorithm == "ufcls":
            out["fcls_variant"] = self.kernels["fcls_solve"]
        return out

    def to_document(self) -> dict[str, Any]:
        """Serialize to a stable, schema-versioned JSON document."""
        return {
            "schema": PLAN_SCHEMA,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "scene": {
                "rows": int(self.rows),
                "cols": int(self.cols),
                "bands": int(self.bands),
            },
            "platform": {
                "name": self.platform_name,
                "size": int(self.platform_size),
            },
            "partition_variant": self.partition_variant,
            "partition_counts": [int(c) for c in self.partition_counts],
            "kernels": dict(self.kernels),
            "checkpoint_every": int(self.checkpoint_every),
            "predicted_makespan_s": float(self.predicted_makespan_s),
            "candidates": {
                name: float(value)
                for name, value in self.candidates.items()
            },
            "default_variant": self.default_variant,
            "default_predicted_s": float(self.default_predicted_s),
            "scales": {
                name: float(value) for name, value in self.scales.items()
            },
            "scale_provenance": (
                dict(self.scale_provenance)
                if self.scale_provenance is not None else None
            ),
            "params": dict(self.params),
        }

    @classmethod
    def from_document(cls, doc: Mapping[str, Any]) -> "TuningPlan":
        """Rehydrate a plan from :meth:`to_document` output."""
        schema = doc.get("schema")
        if schema != PLAN_SCHEMA:
            raise ConfigurationError(
                f"expected schema {PLAN_SCHEMA!r}, got {schema!r}"
            )
        scene = doc["scene"]
        platform = doc["platform"]
        provenance = doc.get("scale_provenance")
        return cls(
            algorithm=str(doc["algorithm"]),
            backend=str(doc["backend"]),
            rows=int(scene["rows"]),
            cols=int(scene["cols"]),
            bands=int(scene["bands"]),
            platform_name=str(platform["name"]),
            platform_size=int(platform["size"]),
            partition_variant=str(doc["partition_variant"]),
            partition_counts=tuple(
                int(c) for c in doc["partition_counts"]
            ),
            kernels=dict(doc["kernels"]),
            checkpoint_every=int(doc["checkpoint_every"]),
            predicted_makespan_s=float(doc["predicted_makespan_s"]),
            candidates={
                str(k): float(v) for k, v in doc["candidates"].items()
            },
            default_variant=str(doc["default_variant"]),
            default_predicted_s=float(doc["default_predicted_s"]),
            scales={str(k): float(v) for k, v in doc["scales"].items()},
            scale_provenance=(
                dict(provenance) if provenance is not None else None
            ),
            params=dict(doc.get("params", {})),
        )

    @classmethod
    def load(cls, path: str | Path) -> "TuningPlan":
        """Read a serialized plan from ``path``."""
        return cls.from_document(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def _load_scales(
    calibration: str | Path | Mapping[str, Any] | None,
    backend: str,
) -> tuple[dict[str, float], dict[str, Any] | None]:
    if calibration is None:
        committed = Path(DEFAULT_CALIBRATION)
        if not committed.is_file():
            # No baseline in reach (e.g. planning from an installed
            # package outside the repo): neutral scales, silently.
            return {"compute": 1.0, "transfer": 1.0}, None
        calibration = committed
    scales, provenance = scales_from_calibration(
        calibration, backend=backend, with_provenance=True
    )
    return scales, provenance


def plan_run(
    algorithm: str,
    platform: HeterogeneousPlatform,
    rows: int,
    cols: int,
    bands: int,
    params: Mapping[str, Any] | None = None,
    *,
    backend: str = "sim",
    cost_model: CostModel | None = None,
    calibration: str | Path | Mapping[str, Any] | None = None,
    default_variant: str = "hetero",
) -> TuningPlan:
    """Plan one run: partition variant, kernel variants, cadence.

    Args:
        algorithm: one of :data:`repro.core.runner.ALGORITHM_NAMES`.
        platform: processors + network the run will execute on.
        rows / cols / bands: scene dimensions (the planner never needs
            pixel data — partitions and the analytic model depend only
            on shape, which is what makes plans reproducible artifacts).
        params: algorithm parameters, as for ``run_parallel``.
        backend: which backend the plan targets (selects the calibrated
            scale set; predictions are exact on ``"sim"`` for the
            detectors and upper bounds for pct/morph).
        cost_model: base cost model before calibration scaling.
        calibration: calibration document (path or parsed mapping);
            ``None`` uses the committed baseline when present and
            neutral 1.0 scales otherwise.
        default_variant: the static choice the plan is measured against;
            always included in the candidate set, and ties break in
            candidate order, so the plan's prediction is ≤ the
            default's by construction.

    Returns:
        A :class:`TuningPlan` carrying the chosen configuration, its
        prediction, every candidate's prediction, and the calibration
        scale provenance.
    """
    if algorithm not in ALGORITHM_NAMES:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{ALGORITHM_NAMES}"
        )
    if default_variant not in PARTITION_VARIANTS:
        raise ConfigurationError(
            f"unknown default variant {default_variant!r}; expected one "
            f"of {PARTITION_VARIANTS}"
        )
    params = dict(params or {})
    base_cost = cost_model or DEFAULT_COST_MODEL
    scales, provenance = _load_scales(calibration, backend)
    tuned_cost = dataclasses.replace(
        base_cost,
        compute_scale=base_cost.compute_scale * scales["compute"],
        comm_scale=base_cost.comm_scale * scales["transfer"],
    )

    candidates: dict[str, float] = {}
    partitions: dict[str, RowPartition] = {}
    for variant in PARTITION_VARIANTS:
        partition = make_row_partition_for_dims(
            platform, rows, cols, bands, algorithm, params,
            variant=variant, cost_model=base_cost,
        )
        partitions[variant] = partition
        candidates[variant] = float(model_run(
            algorithm, platform, partition, rows, cols, bands,
            params=params, cost_model=tuned_cost,
        ).total)

    best = default_variant
    for variant in PARTITION_VARIANTS:
        if candidates[variant] < candidates[best]:
            best = variant

    scalar_params = {
        k: v for k, v in params.items()
        if isinstance(v, (int, float, str, bool))
    }
    return TuningPlan(
        algorithm=algorithm,
        backend=backend,
        rows=int(rows),
        cols=int(cols),
        bands=int(bands),
        platform_name=platform.name,
        platform_size=int(platform.size),
        partition_variant=best,
        partition_counts=tuple(
            int(c) for c in partitions[best].counts
        ),
        kernels=choose_kernel_variants(
            algorithm, rows * cols, bands, params
        ),
        checkpoint_every=1,
        predicted_makespan_s=candidates[best],
        candidates=candidates,
        default_variant=default_variant,
        default_predicted_s=candidates[default_variant],
        scales={
            "compute": float(scales["compute"]),
            "transfer": float(scales["transfer"]),
        },
        scale_provenance=provenance,
        params=scalar_params,
    )
