"""Communication-aware rank→workload mapping.

WEA sizes partitions by speed; *which* worker gets *which* slab also
matters on a segmented network, because a worker separated from the
master by a slow serial link pays more per row.  This module provides
cost estimates for a candidate assignment and a greedy mapping that
pairs the largest workload shares with the best-connected fast
processors — used by the ablation benchmarks to quantify how much of
the heterogeneous win comes from sizing versus placement.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.platform import HeterogeneousPlatform
from repro.errors import ConfigurationError
from repro.types import FloatArray, IntArray

__all__ = [
    "per_rank_cost_estimate",
    "makespan_estimate",
    "greedy_mapping",
    "apply_mapping",
]


def per_rank_cost_estimate(
    platform: HeterogeneousPlatform,
    fractions: FloatArray,
    total_mflops: float,
    total_megabits: float,
) -> FloatArray:
    """Estimated completion time per rank for given workload fractions.

    Each rank's cost = its share of compute at its speed + the time to
    receive its share of the data from the master over its link.
    (Transfers are assumed pipelined across ranks — a lower bound.)
    """
    frac = np.asarray(fractions, dtype=float)
    if frac.shape != (platform.size,):
        raise ConfigurationError(
            f"fractions shape {frac.shape} != ({platform.size},)"
        )
    if total_mflops < 0 or total_megabits < 0:
        raise ConfigurationError("workload totals must be >= 0")
    master = platform.master_rank
    costs = np.empty(platform.size)
    for i in range(platform.size):
        compute = frac[i] * total_mflops * platform.processor(i).cycle_time
        if i == master:
            comm = 0.0
        else:
            comm = (
                platform.network.capacity(master, i) * 1e-3
                * frac[i] * total_megabits
            )
        costs[i] = compute + comm
    return costs


def makespan_estimate(
    platform: HeterogeneousPlatform,
    fractions: FloatArray,
    total_mflops: float,
    total_megabits: float,
) -> float:
    """Max per-rank cost — the load-balance-limited completion estimate."""
    return float(
        per_rank_cost_estimate(platform, fractions, total_mflops, total_megabits).max()
    )


def greedy_mapping(
    platform: HeterogeneousPlatform,
    fractions: FloatArray,
    total_mflops: float,
    total_megabits: float,
) -> IntArray:
    """Assign workload shares to processors to reduce the makespan.

    Sorts shares descending and processors by ascending per-unit cost
    (compute + link-to-master), pairing heaviest share with cheapest
    processor.  Returns ``perm`` with ``perm[share_index] = processor``.
    The master keeps its own share (it never ships data to itself).
    """
    frac = np.asarray(fractions, dtype=float)
    if frac.shape != (platform.size,):
        raise ConfigurationError(
            f"fractions shape {frac.shape} != ({platform.size},)"
        )
    master = platform.master_rank
    unit_costs = per_rank_cost_estimate(
        platform, np.full(platform.size, 1.0 / platform.size),
        total_mflops, total_megabits,
    )
    share_order = np.argsort(-frac)
    proc_order = np.argsort(unit_costs)
    perm = np.empty(platform.size, dtype=np.int64)
    # Keep the master's share pinned to the master.
    shares = [s for s in share_order if s != master]
    procs = [p for p in proc_order if p != master]
    perm[master] = master
    for share_idx, proc in zip(shares, procs):
        perm[share_idx] = proc
    return perm


def apply_mapping(fractions: FloatArray, perm: IntArray) -> FloatArray:
    """Reorder fractions so ``result[perm[i]] = fractions[i]``."""
    frac = np.asarray(fractions, dtype=float)
    p = np.asarray(perm)
    if sorted(p.tolist()) != list(range(frac.size)):
        raise ConfigurationError("perm must be a permutation of all ranks")
    out = np.empty_like(frac)
    out[p] = frac
    return out
