"""LP-optimal static mapping for *iterative* computations.

The paper's algorithms are iterative master/worker loops: every
iteration ends at a gather barrier, so the makespan decomposes as

    T(α) = max_i (arrival_i(α) + c_i(α))  +  (K − 1) · max_i c_i(α)

where ``c_i = α_i·A_i`` is rank i's per-iteration compute,
``arrival_i = Σ_{j≤i, j≠m} α_j·B_j`` is when its data lands (the master
scatters serially in rank order), and ``K`` is the iteration count.
This is the iterative-mapping problem of Legrand/Renard/Robert/Vivien
(the paper's ref [12]) specialized to our star topology — and it is a
*linear program* via the epigraph trick:

    minimize    t1 + (K − 1)·t2
    subject to  arrival_i + c_i ≤ t1     for all i
                c_i             ≤ t2     for all i
                Σ α_i = 1,  α ≥ 0

As ``K → ∞`` the solution approaches WEA's speed-proportional shares;
at ``K = 1`` it solves the one-shot scatter-plus-compute problem
*exactly*, dominating the DLT equal-completion heuristic (which keeps
every processor busy even when handing a slow-linked worker any load at
all is a net loss).  The ablation benchmark compares all three.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.cluster.platform import HeterogeneousPlatform
from repro.errors import ConfigurationError, PartitionError
from repro.types import FloatArray

__all__ = ["iterative_makespan", "optimal_iterative_fractions"]


def _costs(
    platform: HeterogeneousPlatform,
    mflops_per_iteration: float,
    megabits_total: float,
) -> tuple[FloatArray, FloatArray]:
    if mflops_per_iteration <= 0:
        raise ConfigurationError("mflops_per_iteration must be positive")
    if megabits_total < 0:
        raise ConfigurationError("megabits_total must be >= 0")
    p = platform.size
    master = platform.master_rank
    a = np.array(
        [platform.processor(i).cycle_time * mflops_per_iteration for i in range(p)]
    )
    b = np.zeros(p)
    for i in range(p):
        if i != master:
            b[i] = platform.network.capacity(master, i) * 1e-3 * megabits_total
    return a, b


def iterative_makespan(
    platform: HeterogeneousPlatform,
    fractions: FloatArray,
    iterations: int,
    mflops_per_iteration: float,
    megabits_total: float,
) -> float:
    """Evaluate the barrier-synchronized makespan model for given shares."""
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    alpha = np.asarray(fractions, dtype=float)
    if alpha.shape != (platform.size,):
        raise PartitionError(
            f"fractions shape {alpha.shape} != ({platform.size},)"
        )
    a, b = _costs(platform, mflops_per_iteration, megabits_total)
    master = platform.master_rank
    compute = alpha * a
    arrival = np.zeros(platform.size)
    sent = 0.0
    for i in range(platform.size):
        if i == master:
            continue
        sent += alpha[i] * b[i]
        arrival[i] = sent
    arrival[master] = sent  # master computes after its sends
    first = float((arrival + compute).max())
    rest = (iterations - 1) * float(compute.max())
    return first + rest


def optimal_iterative_fractions(
    platform: HeterogeneousPlatform,
    iterations: int,
    mflops_per_iteration: float,
    megabits_total: float,
) -> FloatArray:
    """Solve the iterative-mapping LP (module docstring) exactly.

    Returns:
        Optimal workload fractions ``α`` (sum to 1, non-negative).

    Raises:
        PartitionError: if the LP solver fails (should not happen for a
            feasible platform).
    """
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    p = platform.size
    master = platform.master_rank
    a, b = _costs(platform, mflops_per_iteration, megabits_total)

    # Variables: [alpha_0..alpha_{p-1}, t1, t2]
    n_var = p + 2
    c = np.zeros(n_var)
    c[p] = 1.0
    c[p + 1] = float(iterations - 1)

    a_ub = []
    b_ub = []
    # arrival_i + c_i <= t1 — arrival is the prefix sum over workers in
    # rank order (master's own "arrival" is the full send time).
    for i in range(p):
        row = np.zeros(n_var)
        for j in range(p):
            if j == master:
                continue
            if (i == master) or (j <= i):
                row[j] += b[j]
        row[i] += a[i]
        row[p] = -1.0
        a_ub.append(row)
        b_ub.append(0.0)
    # c_i <= t2
    for i in range(p):
        row = np.zeros(n_var)
        row[i] = a[i]
        row[p + 1] = -1.0
        a_ub.append(row)
        b_ub.append(0.0)

    a_eq = np.zeros((1, n_var))
    a_eq[0, :p] = 1.0
    bounds = [(0.0, None)] * p + [(0.0, None), (0.0, None)]
    result = linprog(
        c, A_ub=np.array(a_ub), b_ub=np.array(b_ub),
        A_eq=a_eq, b_eq=np.array([1.0]), bounds=bounds, method="highs",
    )
    if not result.success:
        raise PartitionError(f"iterative-mapping LP failed: {result.message}")
    alpha = np.maximum(result.x[:p], 0.0)
    return alpha / alpha.sum()
