"""Static data partitioning: the Workload Estimation Algorithm (WEA).

Algorithm 1 of the paper: each processor ``p_i`` receives a workload
fraction ``α_i = (1/w_i) / Σ_j (1/w_j)`` — speed-proportional — which is
translated into a spatial-domain row partition of the image cube
(hybrid partitioning: blocks of spatially adjacent pixel vectors that
keep their full spectral content).  Step 3(b) caps every partition at
the processor's local-memory bound and recursively redistributes the
excess over the unsaturated processors.

The homogeneous variant assigns equal fractions (constant ``w``), and a
*network-aware* variant (a documented extension, see DESIGN.md §1)
deflates a processor's effective speed by its per-unit communication
cost to the master — which is what lets heterogeneous algorithms win on
the partially homogeneous network (equal processors, unequal links).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.cluster.platform import HeterogeneousPlatform
from repro.errors import ConfigurationError, PartitionError
from repro.types import FloatArray, IntArray

__all__ = [
    "heterogeneous_fractions",
    "homogeneous_fractions",
    "network_aware_fractions",
    "dlt_fractions",
    "rows_from_fractions",
    "halo_compensated_rows",
    "RowPartition",
    "wea_partition",
]


def heterogeneous_fractions(platform: HeterogeneousPlatform) -> FloatArray:
    """Speed-proportional workload fractions ``α_i`` (Algorithm 1, step 2).

    (The paper's step 2 typesets a floor around the ratio; taken
    literally every fraction would floor to zero, so — as in the
    reference the step cites [12] — the fractions are the plain
    proportions, and integrality enters in step 3 via the row counts.)
    """
    speeds = platform.speeds
    return speeds / speeds.sum()


def homogeneous_fractions(platform: HeterogeneousPlatform) -> FloatArray:
    """Equal fractions — the homogeneous WEA variant (constant ``w_i``)."""
    return np.full(platform.size, 1.0 / platform.size)


def network_aware_fractions(
    platform: HeterogeneousPlatform,
    mflops_per_row: float,
    megabits_per_row: float,
    kappa: float = 1.0,
) -> FloatArray:
    """Fractions proportional to *effective* row throughput.

    A row assigned to ``p_i`` costs ``w_i · mflops_per_row`` of compute
    plus ``κ · c(master,i) · megabits_per_row`` to ship from the master;
    the fraction is proportional to the reciprocal of that total.
    ``κ = 0`` recovers :func:`heterogeneous_fractions` exactly.

    Args:
        mflops_per_row: per-row computation for the target algorithm.
        megabits_per_row: per-row data volume shipped to the worker.
        kappa: weight of the communication term (ablation knob).
    """
    if mflops_per_row <= 0:
        raise ConfigurationError("mflops_per_row must be positive")
    if megabits_per_row < 0 or kappa < 0:
        raise ConfigurationError("megabits_per_row and kappa must be >= 0")
    master = platform.master_rank
    rates = np.empty(platform.size)
    for i in range(platform.size):
        compute = platform.processor(i).cycle_time * mflops_per_row
        if i == master:
            comm = 0.0
        else:
            comm = platform.network.capacity(master, i) * 1e-3 * megabits_per_row
        rates[i] = 1.0 / (compute + kappa * comm)
    return rates / rates.sum()


def dlt_fractions(
    platform: HeterogeneousPlatform,
    total_mflops: float,
    total_megabits: float,
    tolerance: float = 1e-10,
    max_bisections: int = 200,
) -> FloatArray:
    """Divisible-load-theory fractions for a serialized master scatter.

    Models the runtime's actual schedule: the master sends each
    worker's block in rank order (single-port, rendezvous — transfers
    serialize at the master), each worker computes once its block
    arrives, and the master computes its own share after the last send.
    Worker ``i``'s completion is ``Σ_{j≤i, j≠m} α_j·B_j + α_i·A_i``
    (``A_i`` = compute per unit fraction at its speed, ``B_j`` = wire
    cost per unit fraction over its link); the optimum equalizes all
    completions.  Solved by bisection on the common completion time
    (the total allocated fraction is monotone in it).

    With communication negligible this converges to the WEA
    speed-proportional fractions; with links mattering it shifts load
    toward well-connected processors — the behaviour the paper's
    heterogeneous algorithms exhibit on the partially homogeneous
    network.
    """
    if total_mflops <= 0:
        raise ConfigurationError("total_mflops must be positive")
    if total_megabits < 0:
        raise ConfigurationError("total_megabits must be >= 0")
    p = platform.size
    master = platform.master_rank
    a = np.array(
        [platform.processor(i).cycle_time * total_mflops for i in range(p)]
    )
    b = np.zeros(p)
    for i in range(p):
        if i != master:
            b[i] = platform.network.capacity(master, i) * 1e-3 * total_megabits

    workers = [i for i in range(p) if i != master]

    def allocate(t: float) -> tuple[FloatArray, float]:
        """Fractions achieving completion ≤ t; returns (α, Σα)."""
        alpha = np.zeros(p)
        sent = 0.0  # accumulated wire time of earlier workers
        for i in workers:
            # α_i (B_i + A_i) = t − sent  (its transfer starts at `sent`)
            denom = a[i] + b[i]
            share = max(0.0, (t - sent) / denom) if denom > 0 else 0.0
            alpha[i] = share
            sent += share * b[i]
        # Master computes after all sends complete.
        alpha[master] = max(0.0, (t - sent) / a[master]) if a[master] > 0 else 0.0
        return alpha, float(alpha.sum())

    # Bracket the completion time.
    low, high = 0.0, float(a.min() + b.max() + 1.0)
    while allocate(high)[1] < 1.0:
        high *= 2.0
        if high > 1e18:
            raise PartitionError("DLT bisection failed to bracket a solution")
    for _ in range(max_bisections):
        mid = 0.5 * (low + high)
        _, total = allocate(mid)
        if total < 1.0:
            low = mid
        else:
            high = mid
        if high - low <= tolerance * max(high, 1.0):
            break
    alpha, total = allocate(high)
    return alpha / total


def rows_from_fractions(
    n_rows: int, fractions: FloatArray, min_rows: int = 0
) -> IntArray:
    """Integer row counts approximating real-valued fractions.

    Largest-remainder rounding, with an optional per-partition floor
    (Hetero-MORPH needs non-empty partitions for its window kernels).

    Raises:
        PartitionError: if ``n_rows < min_rows × P`` or fractions are
            invalid.
    """
    frac = np.asarray(fractions, dtype=float)
    if frac.ndim != 1 or frac.size == 0:
        raise PartitionError(f"fractions must be a non-empty vector, got {frac.shape}")
    if np.any(frac < 0) or not np.isclose(frac.sum(), 1.0, atol=1e-9):
        raise PartitionError(
            f"fractions must be non-negative and sum to 1 (sum={frac.sum():.6f})"
        )
    p = frac.size
    if n_rows < 0:
        raise PartitionError(f"n_rows must be >= 0, got {n_rows}")
    if min_rows * p > n_rows:
        raise PartitionError(
            f"cannot give {min_rows} row(s) to each of {p} partitions out of "
            f"{n_rows} rows"
        )
    ideal = frac * n_rows
    counts = np.floor(ideal).astype(np.int64)
    # Enforce floors first, then hand out the remainder by largest fraction.
    counts = np.maximum(counts, min_rows)
    excess = int(counts.sum()) - n_rows
    if excess > 0:
        # Floors overshot: shave rows from the largest over-floor partitions.
        order = np.argsort(ideal - counts)  # most over-allocated first
        for idx in order:
            while excess > 0 and counts[idx] > min_rows:
                counts[idx] -= 1
                excess -= 1
            if excess == 0:
                break
    elif excess < 0:
        remainder = ideal - np.floor(ideal)
        order = np.argsort(-remainder)
        for idx in order[: -excess]:
            counts[idx] += 1
    assert counts.sum() == n_rows
    return counts


def halo_compensated_rows(
    n_rows: int,
    weights: FloatArray,
    halo: int,
    min_rows: int = 1,
    max_iterations: int = 64,
) -> IntArray:
    """Row counts equalizing *extended-block* work under fixed halos.

    Windowed algorithms process ``rows_i + 2·halo`` rows; proportional
    sharing of the core rows alone over-loads small (slow-processor)
    shares, for which the constant halo is relatively large.  Equalizing
    ``(rows_i + 2·halo) / weight_i`` gives ``rows_i = λ·w_i − 2·halo``
    with ``λ = (R + 2·halo·P) / Σw``; shares that would go below
    ``min_rows`` are pinned there and the remainder re-solved.

    Args:
        n_rows: total rows to distribute.
        weights: positive per-rank rates (speeds or DLT fractions).
        halo: overlap rows on each side of a partition.
        min_rows: smallest allowed share.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.size == 0 or np.any(w <= 0):
        raise PartitionError("weights must be a positive vector")
    if halo < 0:
        raise PartitionError(f"halo must be >= 0, got {halo}")
    p = w.size
    if min_rows * p > n_rows:
        raise PartitionError(
            f"cannot give {min_rows} row(s) to each of {p} partitions out of "
            f"{n_rows} rows"
        )
    pinned = np.zeros(p, dtype=bool)
    ideal = np.zeros(p)
    for _ in range(max_iterations):
        free = ~pinned
        remaining = n_rows - min_rows * int(pinned.sum())
        lam = (remaining + 2.0 * halo * int(free.sum())) / w[free].sum()
        ideal[free] = lam * w[free] - 2.0 * halo
        ideal[pinned] = min_rows
        newly = free & (ideal < min_rows)
        if not newly.any():
            break
        pinned |= newly
    else:
        raise PartitionError("halo compensation failed to converge")
    fractions = ideal / ideal.sum()
    return rows_from_fractions(n_rows, fractions, min_rows=min_rows)


@dataclasses.dataclass(frozen=True)
class RowPartition:
    """A spatial-domain (row-slab) partition of an image cube.

    Attributes:
        counts: rows per rank, ``(P,)``.
        n_rows: total rows (== ``counts.sum()``).
    """

    counts: IntArray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        if counts.ndim != 1 or counts.size == 0:
            raise PartitionError("counts must be a non-empty 1-D vector")
        if np.any(counts < 0):
            raise PartitionError("row counts must be >= 0")
        object.__setattr__(self, "counts", counts)

    @property
    def size(self) -> int:
        return int(self.counts.size)

    @property
    def n_rows(self) -> int:
        return int(self.counts.sum())

    @property
    def offsets(self) -> IntArray:
        """Start row of each partition, ``(P,)``."""
        return np.concatenate(([0], np.cumsum(self.counts)[:-1]))

    def bounds(self, rank: int) -> tuple[int, int]:
        """``(start, stop)`` rows owned by ``rank``."""
        if not 0 <= rank < self.size:
            raise PartitionError(f"rank {rank} outside [0, {self.size})")
        start = int(self.offsets[rank])
        return start, start + int(self.counts[rank])

    def fractions(self) -> FloatArray:
        """Realized workload fractions (row share per rank)."""
        total = self.n_rows
        if total == 0:
            raise PartitionError("partition covers zero rows")
        return self.counts / total

    def owner_of_row(self, row: int) -> int:
        """Which rank owns a global row index."""
        if not 0 <= row < self.n_rows:
            raise PartitionError(f"row {row} outside [0, {self.n_rows})")
        return int(np.searchsorted(np.cumsum(self.counts), row, side="right"))


def wea_partition(
    platform: HeterogeneousPlatform,
    n_rows: int,
    cols: int,
    bands: int,
    fractions: FloatArray | None = None,
    bytes_per_value: int = 8,
    usable_memory_fraction: float = 0.5,
    min_rows: int = 1,
    max_redistribution_rounds: int = 64,
) -> RowPartition:
    """Algorithm 1 in full: fractions → rows, with memory upper bounds.

    Step 3(a): rows proportional to ``α_i``; if every partition fits its
    processor's memory, done.  Step 3(b): partitions over the bound are
    capped and the surplus is redistributed over unsaturated processors
    proportionally to their fractions, recursively, until everything is
    placed or the aggregate memory is exhausted.

    Args:
        platform: supplies speeds and per-node memory.
        n_rows, cols, bands: image dimensions (rows are the partition
            unit; each row holds ``cols`` pixel vectors of ``bands``).
        fractions: workload fractions; default speed-proportional.
        bytes_per_value: in-memory width of a spectral sample.
        usable_memory_fraction: see
            :meth:`repro.cluster.processor.ProcessorSpec.max_pixels`.
        min_rows: per-partition floor (default 1 row each).

    Raises:
        PartitionError: if the platform's aggregate memory cannot hold
            the cube or redistribution fails to converge.
    """
    if cols <= 0 or bands <= 0:
        raise PartitionError(f"cols and bands must be positive, got ({cols}, {bands})")
    p = platform.size
    frac = (
        heterogeneous_fractions(platform)
        if fractions is None
        else np.asarray(fractions, dtype=float)
    )
    if frac.shape != (p,):
        raise PartitionError(f"fractions shape {frac.shape} != ({p},)")

    row_caps = np.array(
        [
            platform.processor(i).max_pixels(
                bands, bytes_per_value, usable_memory_fraction
            )
            // cols
            for i in range(p)
        ],
        dtype=np.int64,
    )
    if int(row_caps.sum()) < n_rows:
        raise PartitionError(
            f"aggregate memory holds {int(row_caps.sum())} rows but the cube "
            f"has {n_rows}; the workload does not fit the platform"
        )
    if np.any(row_caps < min_rows):
        raise PartitionError(
            "some processor cannot hold even the minimum partition "
            f"({min_rows} row(s))"
        )

    counts = rows_from_fractions(n_rows, frac, min_rows=min_rows)

    # Step 3(b): cap and redistribute until feasible.
    for _ in range(max_redistribution_rounds):
        over = counts > row_caps
        if not over.any():
            break
        surplus = int((counts[over] - row_caps[over]).sum())
        counts = np.where(over, row_caps, counts)
        headroom = row_caps - counts
        open_mask = (headroom > 0) & ~over
        if not open_mask.any() or surplus == 0:
            raise PartitionError(
                "memory redistribution failed: no unsaturated processors "
                f"remain for {surplus} surplus row(s)"
            )
        weights = frac[open_mask] / frac[open_mask].sum()
        share = np.minimum(
            rows_from_fractions(surplus, weights, min_rows=0),
            headroom[open_mask],
        )
        counts[open_mask] += share
        leftover = surplus - int(share.sum())
        # Any rounding leftover goes one row at a time to open processors.
        while leftover > 0:
            headroom = row_caps - counts
            idx = int(np.argmax(headroom))
            if headroom[idx] <= 0:
                raise PartitionError(
                    "memory redistribution failed to place all rows"
                )
            counts[idx] += 1
            leftover -= 1
    else:
        raise PartitionError(
            f"memory redistribution did not converge in "
            f"{max_redistribution_rounds} rounds"
        )
    return RowPartition(counts)
