"""The Lastovetsky–Reddy heterogeneous-algorithm evaluation framework.

Section 3.1 evaluates heterogeneous algorithms by the principle that "a
heterogeneous algorithm cannot be executed on a heterogeneous network
faster than its homogeneous version on the equivalent homogeneous
network".  The equivalent homogeneous environment must have (1) the
same processor count, (2) per-processor speed equal to the average
heterogeneous speed, and (3) the same aggregate communication
characteristics.  This module checks platform equivalence under those
three principles and scores heterogeneous algorithms against the
resulting optimality bound.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cluster.platform import HeterogeneousPlatform
from repro.errors import ConfigurationError

__all__ = ["EquivalenceReport", "check_equivalence", "heterogeneous_efficiency"]


@dataclasses.dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of the three-principle equivalence check.

    Attributes:
        same_processor_count: principle 1.
        speed_ratio: homogeneous speed / mean heterogeneous speed
            (principle 2; 1.0 is exact).
        capacity_ratio: homogeneous mean capacity / heterogeneous mean
            capacity (principle 3; 1.0 is exact).
        equivalent: all three principles hold within tolerance.
    """

    same_processor_count: bool
    speed_ratio: float
    capacity_ratio: float
    tolerance: float

    @property
    def equivalent(self) -> bool:
        return (
            self.same_processor_count
            and abs(self.speed_ratio - 1.0) <= self.tolerance
            and abs(self.capacity_ratio - 1.0) <= self.tolerance
        )


def check_equivalence(
    heterogeneous: HeterogeneousPlatform,
    homogeneous: HeterogeneousPlatform,
    tolerance: float = 0.05,
) -> EquivalenceReport:
    """Check whether ``homogeneous`` is the Lastovetsky–Reddy equivalent
    of ``heterogeneous`` within a relative ``tolerance``.
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    same_count = heterogeneous.size == homogeneous.size
    mean_speed = float(heterogeneous.speeds.mean())
    homo_speed = float(homogeneous.speeds.mean())
    speed_ratio = homo_speed / mean_speed if mean_speed > 0 else np.inf
    het_cap = heterogeneous.network.mean_capacity()
    hom_cap = homogeneous.network.mean_capacity()
    capacity_ratio = hom_cap / het_cap if het_cap > 0 else np.inf
    return EquivalenceReport(
        same_processor_count=same_count,
        speed_ratio=speed_ratio,
        capacity_ratio=capacity_ratio,
        tolerance=tolerance,
    )


def heterogeneous_efficiency(
    hetero_time_on_hetero: float, homo_time_on_homo: float
) -> float:
    """Optimality score of a heterogeneous algorithm.

    The ratio of the homogeneous version's time on the equivalent
    homogeneous network to the heterogeneous algorithm's time on the
    heterogeneous network.  1.0 means the heterogeneous algorithm is the
    optimal modification of the homogeneous one; values slightly below
    1.0 are expected (the bound says it cannot exceed 1.0 by much —
    Table 5 shows e.g. 81/84 ≈ 0.96 for ATDCA).
    """
    if hetero_time_on_hetero <= 0 or homo_time_on_homo <= 0:
        raise ConfigurationError("execution times must be positive")
    return homo_time_on_homo / hetero_time_on_hetero
