"""Heterogeneity-aware scheduling: WEA partitioning, mapping, baselines."""

from repro.scheduling.dynamic import (
    WorkerResigned,
    dynamic_master_worker,
    fault_tolerant_master_worker,
    speculative_master_worker,
)
from repro.scheduling.iterative import (
    iterative_makespan,
    optimal_iterative_fractions,
)
from repro.scheduling.heho import (
    EquivalenceReport,
    check_equivalence,
    heterogeneous_efficiency,
)
from repro.scheduling.mapping import (
    apply_mapping,
    greedy_mapping,
    makespan_estimate,
    per_rank_cost_estimate,
)
from repro.scheduling.static_part import (
    RowPartition,
    dlt_fractions,
    halo_compensated_rows,
    heterogeneous_fractions,
    homogeneous_fractions,
    network_aware_fractions,
    rows_from_fractions,
    wea_partition,
)

__all__ = [
    "EquivalenceReport",
    "RowPartition",
    "apply_mapping",
    "check_equivalence",
    "WorkerResigned",
    "dlt_fractions",
    "dynamic_master_worker",
    "fault_tolerant_master_worker",
    "halo_compensated_rows",
    "iterative_makespan",
    "optimal_iterative_fractions",
    "greedy_mapping",
    "heterogeneous_efficiency",
    "heterogeneous_fractions",
    "homogeneous_fractions",
    "makespan_estimate",
    "network_aware_fractions",
    "per_rank_cost_estimate",
    "rows_from_fractions",
    "speculative_master_worker",
    "wea_partition",
]
