"""Demand-driven (dynamic) master/worker scheduling baseline.

The paper's algorithms balance load *statically* via WEA.  The classic
alternative from the heterogeneous-scheduling literature it cites
([18], [2]) is demand-driven self-scheduling: the master keeps a queue
of small chunks and hands the next one to whichever worker asks first.
This module implements that baseline over the same communicator API so
ablation benchmarks can compare static-WEA against dynamic balancing
(dynamic pays per-chunk communication; WEA pays a single scatter).

Uses ANY_SOURCE receives, so simulated times are schedule-dependent;
results (the computed values) are exact regardless.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.cluster.mailbox import ANY_SOURCE
from repro.errors import (
    CommunicationTimeout,
    ConfigurationError,
    RankFailedError,
)
from repro.mpi.communicator import MessageContext

__all__ = [
    "dynamic_master_worker",
    "WorkerResigned",
    "fault_tolerant_master_worker",
    "speculative_master_worker",
]

#: Control tags (inside the user tag space).
_TAG_REQUEST = 101
_TAG_WORK = 102
_TAG_RESULT = 103
_TAG_STOP = 104


class WorkerResigned(Exception):
    """Raised by a task function to simulate a worker dropping out.

    The fault-tolerant scheduler treats it as the worker dying without
    notice: the worker simply stops participating, and the master
    *detects* the loss through its receive deadline plus the
    router-derived liveness view (:func:`repro.faults.liveness_of`) —
    no goodbye message is required, so genuinely crashed ranks (e.g. a
    fault-plan :class:`~repro.faults.RankCrash`) are handled the same
    way as scripted resignations.
    """


def dynamic_master_worker(
    ctx: MessageContext,
    tasks: Sequence[Any] | None,
    process_task: Callable[[MessageContext, Any], Any],
    chunk_size: int = 1,
) -> list[Any] | None:
    """Self-scheduling loop: run on every rank (SPMD).

    Args:
        ctx: the rank's message context (sim or in-process backend).
        tasks: the task list — only the master's copy is used.
        process_task: ``f(ctx, task) -> result`` executed at workers
            (and at the master for leftover tasks when it has no
            workers).
        chunk_size: tasks handed out per request.

    Returns:
        At the master: results in task order.  At workers: ``None``.
    """
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    master = ctx.master_rank
    if ctx.rank == master:
        if tasks is None:
            raise ConfigurationError("master must supply the task list")
        n_tasks = len(tasks)
        results: list[Any] = [None] * n_tasks
        n_workers = ctx.size - 1
        if n_workers == 0:
            return [process_task(ctx, t) for t in tasks]
        cursor = 0
        stopped = 0
        while stopped < n_workers:
            worker, kind, body = ctx.recv(ANY_SOURCE, -1)
            if kind == "result":
                start, chunk_results = body
                for offset, value in enumerate(chunk_results):
                    results[start + offset] = value
            # Every message doubles as a work request.
            if cursor < n_tasks:
                stop = min(cursor + chunk_size, n_tasks)
                ctx.send(worker, (cursor, list(tasks[cursor:stop])), _TAG_WORK)
                cursor = stop
            else:
                ctx.send(worker, None, _TAG_STOP)
                stopped += 1
        return results

    # Worker: request, process, repeat.
    ctx.send(master, (ctx.rank, "request", None), _TAG_REQUEST)
    while True:
        chunk = ctx.recv(master, -1)
        if chunk is None:
            return None
        start, chunk_tasks = chunk
        chunk_results = [process_task(ctx, t) for t in chunk_tasks]
        ctx.send(master, (ctx.rank, "result", (start, chunk_results)), _TAG_RESULT)


def fault_tolerant_master_worker(
    ctx: MessageContext,
    tasks: Sequence[Any] | None,
    process_task: Callable[[MessageContext, Any], Any],
    chunk_size: int = 1,
    timeout_s: float = 0.25,
) -> list[Any] | None:
    """Self-scheduling with worker-failure *detection* and recovery (SPMD).

    Like :func:`dynamic_master_worker`, but robust to workers that stop
    without notice: a worker whose ``process_task`` raises
    :class:`WorkerResigned` simply returns (simulated silent death),
    and genuinely crashed ranks (fault-plan
    :class:`~repro.faults.RankCrash`) disappear the same way.  The
    master detects losses with the :mod:`repro.faults` detection API —
    a per-receive deadline (``timeout_s``; virtual seconds on the
    engine, wall seconds inproc) plus the router-derived liveness view
    — then requeues the dead workers' outstanding chunks for the
    survivors.  The answer is complete and correct as long as the
    master survives: it processes leftovers itself if *all* workers
    are lost.

    Returns:
        At the master: results in task order.  At workers: ``None``.
    """
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    if timeout_s <= 0:
        raise ConfigurationError(f"timeout_s must be > 0, got {timeout_s}")
    # Imported lazily: repro.faults pulls in the algorithm drivers,
    # which import this package.
    from repro.faults.detect import liveness_of

    master = ctx.master_rank
    if ctx.rank == master:
        if tasks is None:
            raise ConfigurationError("master must supply the task list")
        n_tasks = len(tasks)
        results: list[Any] = [None] * n_tasks
        pending: list[tuple[int, int]] = []  # requeued (start, stop) chunks
        cursor = 0
        n_workers = ctx.size - 1
        if n_workers == 0:
            return [process_task(ctx, t) for t in tasks]
        liveness = liveness_of(ctx)
        alive = {rank for rank in range(ctx.size) if rank != master}
        outstanding: dict[int, tuple[int, int]] = {}

        def next_chunk() -> tuple[int, int] | None:
            nonlocal cursor
            if pending:
                return pending.pop()
            if cursor < n_tasks:
                start = cursor
                cursor = min(cursor + chunk_size, n_tasks)
                return (start, cursor)
            return None

        def bury(worker: int) -> None:
            """Requeue a dead worker's chunk and stop scheduling to it."""
            chunk = outstanding.pop(worker, None)
            if chunk is not None:
                pending.append(chunk)
            alive.discard(worker)

        while alive:
            try:
                worker, kind, body = ctx.recv(
                    ANY_SOURCE, -1, timeout_s=timeout_s
                )
            except CommunicationTimeout:
                # Nobody is talking: see who died.  On the virtual-time
                # engine the deadline only fires at quiescence, so a
                # timeout here *implies* lost workers; on the wall
                # clock it may be spurious (slow workers) — then no
                # rank is dead and we simply wait again.
                for worker in sorted(alive):
                    if not liveness.is_alive(worker):
                        bury(worker)
                continue
            if kind == "result":
                start, chunk_results = body
                for offset, value in enumerate(chunk_results):
                    results[start + offset] = value
                outstanding.pop(worker, None)
            chunk = next_chunk()
            try:
                if chunk is not None:
                    start, stop = chunk
                    outstanding[worker] = chunk
                    ctx.send(
                        worker, (start, list(tasks[start:stop])), _TAG_WORK,
                        timeout_s=timeout_s,
                    )
                else:
                    ctx.send(worker, None, _TAG_STOP, timeout_s=timeout_s)
                    alive.discard(worker)
            except (CommunicationTimeout, RankFailedError):
                bury(worker)
        # All workers retired or lost: the master mops up anything left.
        while True:
            chunk = next_chunk()
            if chunk is None:
                break
            start, stop = chunk
            for offset, task in enumerate(tasks[start:stop]):
                results[start + offset] = process_task(ctx, task)
        return results

    # Worker loop; resignation is silent — detection is the master's job.
    ctx.send(master, (ctx.rank, "request", None), _TAG_REQUEST)
    while True:
        chunk = ctx.recv(master, -1)
        if chunk is None:
            return None
        start, chunk_tasks = chunk
        try:
            chunk_results = [process_task(ctx, t) for t in chunk_tasks]
        except WorkerResigned:
            return None
        ctx.send(master, (ctx.rank, "result", (start, chunk_results)), _TAG_RESULT)


def speculative_master_worker(
    ctx: MessageContext,
    tasks: Sequence[Any] | None,
    process_task: Callable[[MessageContext, Any], Any],
    chunk_size: int = 1,
) -> list[Any] | None:
    """Self-scheduling with speculative straggler re-execution (SPMD).

    Like :func:`dynamic_master_worker` until the fresh-task queue
    drains; from then on an idle worker asking for work receives a
    *duplicate* of an outstanding chunk instead of an immediate stop —
    the MapReduce "backup task" move for stragglers.  The candidate
    order is deterministic: fewest current holders first, then the
    lowest start index (the longest-outstanding chunk — the one a
    slowed worker has been sitting on).  The first copy of a chunk to
    come back wins; results from later copies are discarded, so the
    result array is written exactly once per task and stays
    byte-identical to the sequential reference regardless of which
    copy won.  A straggler is never interrupted — it finishes its
    (by then redundant) chunk and is stopped on its next request — but
    the master's *result set* completes as soon as the fastest copy of
    every chunk is in.

    Accounting (when the backend carries an obs session): counters
    ``spec.reissues`` (duplicates issued) and ``spec.duplicates``
    (redundant results discarded).

    Returns:
        At the master: results in task order.  At workers: ``None``.
    """
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    master = ctx.master_rank
    if ctx.rank != master:
        # Workers are oblivious to speculation — the protocol is
        # exactly the demand-driven one.
        return dynamic_master_worker(ctx, tasks, process_task, chunk_size)

    if tasks is None:
        raise ConfigurationError("master must supply the task list")
    obs = getattr(ctx, "obs", None)
    metrics = obs.metrics if obs is not None else None
    n_tasks = len(tasks)
    results: list[Any] = [None] * n_tasks
    n_workers = ctx.size - 1
    if n_workers == 0:
        return [process_task(ctx, t) for t in tasks]

    cursor = 0
    stopped = 0
    chunks: dict[int, tuple[int, int]] = {}  # start -> (start, stop)
    holders: dict[int, list[int]] = {}  # start -> workers holding a copy
    completed: set[int] = set()

    def speculation_candidate(worker: int) -> int | None:
        """Deterministic pick: fewest holders, then lowest start (the
        longest-outstanding chunk), never a chunk this worker already
        holds."""
        best: int | None = None
        best_key: tuple[int, int] | None = None
        for start in chunks:
            if start in completed:
                continue
            held_by = holders.get(start, [])
            if worker in held_by:
                continue
            key = (len(held_by), start)
            if best_key is None or key < best_key:
                best, best_key = start, key
        return best

    while stopped < n_workers:
        worker, kind, body = ctx.recv(ANY_SOURCE, -1)
        if kind == "result":
            start, chunk_results = body
            held_by = holders.get(start)
            if held_by is not None and worker in held_by:
                held_by.remove(worker)
            if start in completed:
                # A slower copy of an already-finished chunk.
                if metrics is not None:
                    metrics.counter("spec.duplicates").inc()
            else:
                completed.add(start)
                for offset, value in enumerate(chunk_results):
                    results[start + offset] = value
        # Every message doubles as a work request.
        if cursor < n_tasks:
            start, stop = cursor, min(cursor + chunk_size, n_tasks)
            cursor = stop
            chunks[start] = (start, stop)
            holders[start] = [worker]
            ctx.send(worker, (start, list(tasks[start:stop])), _TAG_WORK)
            continue
        candidate = speculation_candidate(worker)
        if candidate is not None:
            start, stop = chunks[candidate]
            holders[start].append(worker)
            if metrics is not None:
                metrics.counter("spec.reissues").inc()
            ctx.send(worker, (start, list(tasks[start:stop])), _TAG_WORK)
            continue
        ctx.send(worker, None, _TAG_STOP)
        stopped += 1
    return results
