"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the most specific
subclass that applies; constructors accept a human-readable message and
(optionally) structured context that is folded into the message.
"""

from __future__ import annotations

from typing import NoReturn, Sequence

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PlatformError",
    "PartitionError",
    "CommunicationError",
    "TagMismatchError",
    "TruncationError",
    "DeadlockError",
    "RankFailedError",
    "RepartitionSignal",
    "CommunicationTimeout",
    "TransientNetworkError",
    "FaultPlanError",
    "WhatIfPlanError",
    "DataError",
    "ShapeError",
    "ConvergenceError",
    "ExperimentError",
    "EnviFormatError",
    "raise_root_cause",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied."""


class PlatformError(ReproError):
    """A heterogeneous platform description is malformed or unusable.

    Raised e.g. for unknown processor ids, non-symmetric link-capacity
    matrices, or topologies that are not connected.
    """


class PartitionError(ReproError):
    """A data partitioning request cannot be satisfied.

    Raised when the aggregate memory of the platform cannot hold the
    workload, when workload fractions do not sum to one, or when a
    partition would be empty where the algorithm requires non-empty
    shares.
    """


class CommunicationError(ReproError):
    """A message-passing operation failed or was used incorrectly."""


class TagMismatchError(CommunicationError):
    """A receive matched a message whose tag disagrees with the request."""


class TruncationError(CommunicationError):
    """A received message is larger than the posted receive buffer."""


class DeadlockError(CommunicationError):
    """The runtime detected that all ranks are blocked with no messages
    in flight — the program can never make progress."""


class RankFailedError(CommunicationError):
    """A rank stopped executing (crashed) and can no longer communicate.

    Raised on the failing rank itself by the fault injector
    (``injected=True``) and on its peers when they try to talk to it
    (``secondary=True``).  The failure-sorting logic in both backends
    prefers injected over secondary errors, so the reported root cause
    is always the crash, not the fallout.

    Attributes:
        rank: the rank that failed (in the *current* run's numbering).
        injected: True when raised by a fault plan on the failing rank.
        secondary: True when raised on a peer that observed the failure.
    """

    def __init__(
        self,
        rank: int,
        message: str | None = None,
        injected: bool = False,
        secondary: bool = False,
    ) -> None:
        self.rank = int(rank)
        self.injected = bool(injected)
        self.secondary = bool(secondary)
        super().__init__(message or f"rank {rank} failed")


class RepartitionSignal(ReproError):
    """Cooperative mid-run exit: all ranks agreed to repartition.

    Raised by every rank of an adaptive run at the same iteration
    boundary after the master's repartition decision was broadcast (see
    :mod:`repro.faults.adaptive`).  Unlike a crash, no rank is left
    blocked — each rank raises this right after the decision broadcast
    completes locally — so the backends retire the rank *without*
    aborting the router (an abort could kill peers still forwarding
    inside the broadcast tree, turning a clean coordinated exit into
    nondeterministic secondary failures).

    Attributes:
        rank: dense rank id of the drifting rank (current numbering).
        factor: estimated slowdown factor to fold into the model.
        step: completed iteration count the run can resume from.
        ewma: the detector's EWMA relative error at the decision.
    """

    #: Marker for the backends' failure handling: a cooperative signal
    #: must not abort the router.
    cooperative = True

    def __init__(
        self, rank: int, factor: float, step: int, ewma: float = 0.0
    ) -> None:
        self.rank = int(rank)
        self.factor = float(factor)
        self.step = int(step)
        self.ewma = float(ewma)
        super().__init__(
            f"repartition requested at step {step}: rank {rank} drifted "
            f"(estimated slowdown x{factor:.3g}, ewma={ewma:.4f})"
        )


class CommunicationTimeout(CommunicationError):
    """A send/recv deadline expired before the operation could match.

    On the virtual-time engine the waiting rank's clock is advanced to
    the deadline *exactly* before this is raised, so timeout behaviour
    is deterministic and observable in traces.

    Attributes:
        rank: the rank whose operation timed out.
        deadline_s: the absolute deadline on that rank's clock.
    """

    def __init__(
        self, message: str, rank: int | None = None,
        deadline_s: float | None = None,
    ) -> None:
        self.rank = rank
        self.deadline_s = deadline_s
        super().__init__(message)


class TransientNetworkError(CommunicationError):
    """A message was lost in transit (retriable).

    Raised at the *sender* by the fault injector for ``MessageDrop``
    faults; :func:`repro.faults.send_with_retry` resends with
    exponential backoff.
    """


class FaultPlanError(ConfigurationError):
    """A fault plan is malformed or inconsistent with the platform."""


class WhatIfPlanError(ConfigurationError):
    """A what-if plan is malformed or inconsistent with the trace."""


class DataError(ReproError, ValueError):
    """Input data (image cube, spectra, ground truth) is invalid."""


class ShapeError(DataError):
    """An array does not have the shape or dimensionality required."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical routine failed to converge."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured or produced invalid output."""


class EnviFormatError(ReproError, IOError):
    """An ENVI header/binary pair could not be parsed or round-tripped."""


def _is_secondary(exc: BaseException) -> bool:
    return isinstance(exc, DeadlockError) or bool(getattr(exc, "secondary", False))


def raise_root_cause(failures: Sequence[tuple[int, BaseException]]) -> NoReturn:
    """Raise the root cause of a multi-rank failure, chaining the rest.

    When one rank crashes, its peers typically surface secondary
    :class:`DeadlockError`/:class:`RankFailedError` fallout.  Failures
    are ordered injected-first, secondaries last (ties broken by rank),
    the remaining exceptions are linked onto the winner's
    ``__context__`` chain, and the winner is raised (wrapped in a
    :class:`ReproError` if it is a foreign exception).
    """
    ordered = sorted(
        failures,
        key=lambda item: (
            _is_secondary(item[1]),
            not bool(getattr(item[1], "injected", False)),
            item[0],
        ),
    )
    rank, root = ordered[0]
    tail: BaseException = root
    for _, exc in ordered[1:]:
        if exc is root or exc is tail:
            continue
        tail.__context__ = exc
        tail = exc
    if isinstance(root, ReproError):
        raise root
    raise ReproError(f"rank {rank} failed: {root!r}") from root
