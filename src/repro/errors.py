"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the most specific
subclass that applies; constructors accept a human-readable message and
(optionally) structured context that is folded into the message.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PlatformError",
    "PartitionError",
    "CommunicationError",
    "TagMismatchError",
    "TruncationError",
    "DeadlockError",
    "DataError",
    "ShapeError",
    "ConvergenceError",
    "ExperimentError",
    "EnviFormatError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied."""


class PlatformError(ReproError):
    """A heterogeneous platform description is malformed or unusable.

    Raised e.g. for unknown processor ids, non-symmetric link-capacity
    matrices, or topologies that are not connected.
    """


class PartitionError(ReproError):
    """A data partitioning request cannot be satisfied.

    Raised when the aggregate memory of the platform cannot hold the
    workload, when workload fractions do not sum to one, or when a
    partition would be empty where the algorithm requires non-empty
    shares.
    """


class CommunicationError(ReproError):
    """A message-passing operation failed or was used incorrectly."""


class TagMismatchError(CommunicationError):
    """A receive matched a message whose tag disagrees with the request."""


class TruncationError(CommunicationError):
    """A received message is larger than the posted receive buffer."""


class DeadlockError(CommunicationError):
    """The runtime detected that all ranks are blocked with no messages
    in flight — the program can never make progress."""


class DataError(ReproError, ValueError):
    """Input data (image cube, spectra, ground truth) is invalid."""


class ShapeError(DataError):
    """An array does not have the shape or dimensionality required."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical routine failed to converge."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured or produced invalid output."""


class EnviFormatError(ReproError, IOError):
    """An ENVI header/binary pair could not be parsed or round-tripped."""
