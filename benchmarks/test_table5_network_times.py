"""Table 5 benchmark: execution times on the four equivalent networks.

Checks the paper's headline claims:

(i)  every heterogeneous algorithm runs in nearly the same time on all
     four networks (adapts to the environment);
(ii) the homogeneous versions collapse on the processor-heterogeneous
     networks;
(iii) a heterogeneous algorithm's time on the fully heterogeneous
     network is close to its homogeneous version's on the (equivalent)
     fully homogeneous network — Lastovetsky-Reddy near-optimality.
"""

import numpy as np

from repro.core.runner import ALGORITHM_NAMES
from repro.experiments.table5 import run_table5


def test_table5_shape_and_report(benchmark, config, grid):
    result = benchmark.pedantic(
        run_table5, kwargs=dict(config=config, grid=grid),
        rounds=1, iterations=1,
    )
    print()
    print(result.to_text())

    for alg in ALGORITHM_NAMES:
        het_row = result.times[f"Hetero-{alg.upper()}"]
        # (i) hetero times flat across networks (within ~25%).
        values = np.array(list(het_row.values()))
        assert values.max() / values.min() < 1.3, alg

        # (ii) homo collapses where processors are heterogeneous.
        assert result.ratio(alg, "fully heterogeneous") > 2.5, alg
        assert result.ratio(alg, "partially heterogeneous") > 2.5, alg

        # (iii) near-optimality: hetero-on-het within 15% of
        # homo-on-equivalent-homo.
        het_on_het = het_row["fully heterogeneous"]
        homo_on_homo = result.times[f"Homo-{alg.upper()}"]["fully homogeneous"]
        assert 0.75 < het_on_het / homo_on_homo < 1.25, alg
