"""Shared fixtures for the benchmark harness.

The expensive artefacts (the WTC scene, the 32-run network grid, the
Thunderhead sweep) are built once per session; the per-table benchmarks
then time their projections and print the paper-style tables into the
benchmark log.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_network_grid
from repro.experiments.table8 import run_table8
from repro.hsi.scene import make_wtc_scene


@pytest.fixture(scope="session")
def config():
    """The full experiment configuration (paper parameters)."""
    return ExperimentConfig()


@pytest.fixture(scope="session")
def scene(config):
    """The default WTC scene used by the accuracy experiments."""
    return make_wtc_scene(config.scene)


@pytest.fixture(scope="session")
def grid(config):
    """The 32-run network grid shared by Tables 5-7 (built once)."""
    return run_network_grid(config)


@pytest.fixture(scope="session")
def table8(config):
    """The Thunderhead sweep shared by Table 8 and Figure 2."""
    return run_table8(config)
