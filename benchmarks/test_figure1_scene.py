"""Figure 1 benchmark: scene renderings.

Writes the false-colour composite, the thermal hot-spot map, and the
ground-truth class map, and sanity-checks the rendered content (the
smoke plume's blue brightness, hot spots marked at their positions).
"""

import numpy as np

from repro.experiments.figure1 import run_figure1


def test_figure1_render_and_report(benchmark, config, scene, tmp_path_factory):
    outdir = tmp_path_factory.mktemp("figure1")
    result = benchmark.pedantic(
        run_figure1,
        kwargs=dict(config=config, scene=scene, output_dir=outdir),
        rounds=1, iterations=1,
    )
    print()
    print(result.to_text())

    for path in (result.composite_path, result.thermal_map_path,
                 result.class_map_path):
        assert path.exists()
        assert path.read_bytes().startswith(b"P6")

    # The thermal map marks every hot spot in red.
    raw = result.thermal_map_path.read_bytes()
    header_end = raw.index(b"255\n") + 4
    rows, cols = scene.image.rows, scene.image.cols
    rgb = np.frombuffer(raw[header_end:], dtype=np.uint8).reshape(rows, cols, 3)
    for spot in scene.truth.targets.values():
        assert tuple(rgb[spot.row, spot.col]) == (255, 0, 0)
