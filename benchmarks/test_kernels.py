"""Micro-benchmarks of the numerical kernels (pytest-benchmark).

These time the hot loops on fixed inputs so regressions in the
vectorized implementations are visible across commits.
"""

import numpy as np
import pytest

from repro.core.atdca import atdca_pixels
from repro.hsi.metrics import sad_pairwise, sad_to_references
from repro.linalg.fcls import fcls_abundances
from repro.linalg.osp import residual_energy
from repro.linalg.pca import covariance_matrix, pct_transform
from repro.morphology.ops import morph_extrema
from repro.morphology.structuring import square


@pytest.fixture(scope="module")
def pixels():
    rng = np.random.default_rng(99)
    return rng.random((20_000, 48)) + 0.05


@pytest.fixture(scope="module")
def cube():
    rng = np.random.default_rng(99)
    return rng.random((128, 96, 32)) + 0.05


def test_bench_sad_to_references(benchmark, pixels):
    refs = pixels[:24]
    result = benchmark(sad_to_references, pixels, refs)
    assert result.shape == (20_000, 24)


def test_bench_sad_pairwise(benchmark, pixels):
    mat = pixels[:512]
    result = benchmark(sad_pairwise, mat)
    assert result.shape == (512, 512)


def test_bench_osp_residual(benchmark, pixels):
    targets = pixels[:12]
    result = benchmark(residual_energy, pixels, targets)
    assert result.shape == (20_000,)


def test_bench_fcls(benchmark, pixels):
    endmembers = pixels[:8]
    result = benchmark(fcls_abundances, pixels[:2_000], endmembers)
    assert result.shape == (2_000, 8)


def test_bench_covariance_eig(benchmark, pixels):
    def run():
        cov = covariance_matrix(pixels)
        return pct_transform(cov, n_components=12)

    transform, _ = benchmark(run)
    assert transform.shape == (12, 48)


def test_bench_morph_extrema(benchmark, cube):
    se = square(3)
    result = benchmark(morph_extrema, cube, se)
    assert result.eroded.shape == cube.shape


def test_bench_atdca_end_to_end(benchmark, pixels):
    result = benchmark(atdca_pixels, pixels[:8_000], 10)
    assert result.n_targets == 10
