"""Table 7 benchmark: load-balancing rates.

Checks the paper's balance claims: heterogeneous variants keep workers
within a few percent of each other (D_minus ≈ 1); MORPH is the best
balanced overall with D_all ≈ D_minus; the homogeneous variants are far
worse on heterogeneous processors; and (for the non-windowed
algorithms) excluding the root improves the rate (the master carries
extra sequential work).
"""

from repro.experiments.table7 import run_table7


def test_table7_shape_and_report(benchmark, config, grid):
    result = benchmark.pedantic(
        run_table7, kwargs=dict(config=config, grid=grid),
        rounds=1, iterations=1,
    )
    print()
    print(result.to_text())

    net = "fully heterogeneous"
    for alg in ("ATDCA", "UFCLS", "PCT", "MORPH"):
        het = result.scores[f"Hetero-{alg}"][net]
        homo = result.scores[f"Homo-{alg}"][net]
        # Hetero workers near-perfectly balanced; homo versions not.
        assert het.d_minus < 1.25, alg
        assert homo.d_all > 3.0 * het.d_all, alg

    # MORPH: D_all ≈ D_minus (no master-heavy sequential steps).
    morph = result.scores["Hetero-MORPH"][net]
    assert abs(morph.d_all - morph.d_minus) < 0.1
    # PCT's master skew: D_all noticeably above D_minus.
    pct = result.scores["Hetero-PCT"][net]
    assert pct.d_all > pct.d_minus + 0.05
