"""Table 4 benchmark: classification accuracy (PCT vs MORPH).

Regenerates the paper's Table 4 and checks the published claims: MORPH
substantially above PCT, with MORPH > 90% overall and PCT in the ~60-90%
band (the paper reports 80.45%).
"""

from repro.experiments.table4 import run_table4


def test_table4_shape_and_report(benchmark, config, scene):
    result = benchmark.pedantic(
        run_table4, kwargs=dict(config=config, scene=scene),
        rounds=1, iterations=1,
    )
    print()
    print(result.to_text())

    morph = result.overall("MORPH")
    pct = result.overall("PCT")
    assert morph > pct, "MORPH must substantially improve on PCT"
    assert morph > 90.0, "paper: MORPH delivers a >93%-quality map"
    assert 55.0 < pct < morph, "paper: PCT lands around 80%"
