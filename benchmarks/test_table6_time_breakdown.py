"""Table 6 benchmark: COM/SEQ/PAR decomposition.

Checks the paper's structural observations: PAR dominates COM
everywhere; PCT carries the largest sequential share and MORPH the
smallest; and the homogeneous variants' PAR explodes on heterogeneous
processors (inefficient workload distribution).
"""

from repro.experiments.table6 import run_table6


def test_table6_shape_and_report(benchmark, config, grid):
    result = benchmark.pedantic(
        run_table6, kwargs=dict(config=config, grid=grid),
        rounds=1, iterations=1,
    )
    print()
    print(result.to_text())

    net = "fully heterogeneous"
    seq = {
        alg: result.breakdowns[f"Hetero-{alg}"][net].seq
        for alg in ("ATDCA", "UFCLS", "PCT", "MORPH")
    }
    # Paper ordering: PCT > ATDCA > UFCLS > MORPH.
    assert seq["PCT"] > seq["ATDCA"] > seq["UFCLS"] > seq["MORPH"]

    for label in result.grid.row_labels:
        b = result.breakdowns[label][net]
        # Computation dominates communication for these algorithms.
        assert b.par > b.com, label

    # Homo PAR explosion relative to hetero on the het network.
    het = result.breakdowns["Hetero-ATDCA"][net]
    homo = result.breakdowns["Homo-ATDCA"][net]
    assert homo.par > 3.0 * het.par
    # SEQ is variant-independent (same master work).
    assert abs(homo.seq - het.seq) / het.seq < 0.2
