"""Table 3 benchmark: target-detection accuracy (ATDCA vs UFCLS).

Regenerates the paper's Table 3 on the synthetic WTC scene and checks
the published shape: ATDCA matches every hot spot almost exactly, while
UFCLS misses the coolest spot 'F' (700 °F).
"""

from repro.experiments.table3 import run_table3


def test_table3_shape_and_report(benchmark, config, scene):
    result = benchmark.pedantic(
        run_table3, kwargs=dict(config=config, scene=scene),
        rounds=1, iterations=1,
    )
    print()
    print(result.to_text())

    # Paper shape (vi): ATDCA detects all seven hot spots near-exactly.
    assert result.detected_all("ATDCA", tolerance=0.02)
    # UFCLS misses the coolest spot 'F' (the paper's 0.169 entry) ...
    assert "F" in result.missed("UFCLS", tolerance=0.02)
    # ... but matches the hottest, 'G' (the paper's 0.001 entry).
    assert result.sad["UFCLS"]["G"] < 0.01
