"""Table 8 benchmark: Thunderhead execution times by CPU count.

Runs the validated analytic model at the paper's full scene dimensions
and checks the published shape: single-node times in the paper's
ordering (MORPH > PCT > ATDCA > UFCLS), monotone scaling, and 256-CPU
times within the right band.
"""

from repro.experiments.table8 import run_table8


def test_table8_shape_and_report(benchmark, config, table8):
    # The session fixture already ran the sweep once; benchmark re-runs
    # it to time the full model sweep itself.
    result = benchmark.pedantic(
        run_table8, kwargs=dict(config=config), rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    t1 = {alg: result.times[alg][1] for alg in result.times}
    # Paper P=1 ordering: MORPH 2334 > PCT 1884 > ATDCA 1263 > UFCLS 916.
    assert t1["MORPH"] > t1["PCT"] > t1["ATDCA"] > t1["UFCLS"]
    # Magnitudes within a factor ~1.6 of the published single-node times.
    for alg, paper in (("ATDCA", 1263), ("UFCLS", 916), ("PCT", 1884),
                       ("MORPH", 2334)):
        assert paper / 1.6 < t1[alg] < paper * 1.6, alg

    # Monotone strong scaling across the sweep.
    for alg in result.times:
        series = [result.times[alg][p] for p in result.cpus]
        assert all(a > b for a, b in zip(series, series[1:])), alg

    # 256-CPU times land in the paper's band (7 / 6 / 15 / 11 s).
    for alg, paper in (("ATDCA", 7), ("UFCLS", 6), ("PCT", 15), ("MORPH", 11)):
        measured = result.times[alg][256]
        assert paper / 2.0 < measured < paper * 2.0, (alg, measured)
