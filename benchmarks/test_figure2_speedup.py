"""Figure 2 benchmark: Thunderhead speedup curves.

Renders the paper's scalability figure (terminal chart) and checks its
ordering claims: MORPH scales best, PCT worst (the sequential fraction
the paper blames), ATDCA slightly better than UFCLS.
"""

from repro.experiments.figure2 import run_figure2
from repro.perf.speedup import amdahl_serial_fraction


def test_figure2_shape_and_report(benchmark, config, table8):
    result = benchmark.pedantic(
        run_figure2, kwargs=dict(config=config, table8=table8),
        rounds=1, iterations=1,
    )
    print()
    print(result.to_text())

    # Paper's Figure 2 ordering at 256 CPUs.
    order = result.scaling_order()
    assert order[0] == "MORPH", order
    assert order[-1] == "PCT", order
    assert order.index("ATDCA") < order.index("UFCLS")

    # Everyone achieves large but sub-linear speedup at 256 CPUs.
    for alg in result.speedups:
        final = result.final_speedup(alg)
        assert 50.0 < final < 256.0, (alg, final)

    # PCT's limiting serial fraction exceeds MORPH's (Amdahl fit).
    cpus = list(result.cpus)
    f_pct = amdahl_serial_fraction(
        [result.table8.times["PCT"][p] for p in cpus], cpus
    )
    f_morph = amdahl_serial_fraction(
        [result.table8.times["MORPH"][p] for p in cpus], cpus
    )
    assert f_pct > f_morph
