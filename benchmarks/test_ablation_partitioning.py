"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. WEA variants: speed-proportional (the paper's Algorithm 1) vs DLT
   (serialized-scatter-aware) vs equal shares — quantifying what each
   ingredient of heterogeneity-awareness buys on each network.
2. MORPH halo compensation: with vs without the extended-block
   equalization.
3. Exact vs approximate overlap borders: the redundancy cost of
   bit-exactness.
4. Static WEA vs demand-driven dynamic scheduling for one-shot
   workloads.
"""

import numpy as np
import pytest

from repro.cluster import CostModel, fully_heterogeneous, partially_homogeneous
from repro.core.runner import run_parallel
from repro.experiments.config import ExperimentConfig
from repro.hsi.scene import make_wtc_scene
from repro.morphology.halo import extract_halo_block, redundant_fraction
from repro.scheduling.static_part import (
    RowPartition,
    halo_compensated_rows,
    heterogeneous_fractions,
    rows_from_fractions,
)


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig()


@pytest.fixture(scope="module")
def timing_scene(cfg):
    return make_wtc_scene(cfg.grid_scene)


@pytest.fixture(scope="module")
def cost(cfg):
    return cfg.cost_model(cfg.grid_scene)


def test_ablation_wea_variants(benchmark, cfg, timing_scene, cost):
    """Speed-proportional vs DLT vs equal shares, on the fully
    heterogeneous network (iterative workload: WEA should win or tie)."""
    plat = fully_heterogeneous()
    params = {"n_targets": 8}

    def run_all():
        return {
            variant: run_parallel(
                "atdca", timing_scene.image, plat, params=params,
                variant=variant, cost_model=cost,
            ).makespan
            for variant in ("hetero", "dlt", "homo")
        }

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"\nWEA ablation (fully heterogeneous): {times}")
    assert times["hetero"] < times["homo"]
    # For the iterative loop, per-iteration balance beats scatter-
    # optimal tilting — DLT must not beat plain WEA by much, and the
    # homogeneous variant must lose clearly to both.
    assert times["dlt"] < times["homo"]
    assert times["hetero"] <= times["dlt"] * 1.10


def test_ablation_dlt_wins_on_network_heterogeneity(benchmark, cfg, timing_scene):
    """On the partially homogeneous network (equal processors, unequal
    links) with a communication-heavy cost model, DLT's link-aware
    shares beat equal shares for the one-scatter part of the schedule.
    The effect on total time is small for iterative algorithms — this
    ablation pins the *direction*."""
    plat = partially_homogeneous()
    # Make communication matter: same compute scale, 5x the wire volume.
    heavy_comm = CostModel(
        compute_scale=cfg.compute_scale(cfg.grid_scene),
        comm_scale=5 * cfg.comm_scale(cfg.grid_scene),
    )
    params = {"n_targets": 4}

    def run_both():
        return {
            variant: run_parallel(
                "atdca", timing_scene.image, plat, params=params,
                variant=variant, cost_model=heavy_comm,
            ).makespan
            for variant in ("dlt", "homo")
        }

    times = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nDLT vs equal on heterogeneous links: {times}")
    assert times["dlt"] <= times["homo"] * 1.02


def test_ablation_iterative_lp_mapping(benchmark, cfg, timing_scene, cost):
    """The LP-optimal iterative mapping, executed on the engine:
    it must not lose to either heuristic, and its model-predicted
    makespans must rank the three variants the same way the engine
    measures them."""
    from repro.core.runner import estimate_row_workload
    from repro.scheduling import (
        dlt_fractions,
        heterogeneous_fractions,
        optimal_iterative_fractions,
        rows_from_fractions,
    )

    plat = fully_heterogeneous()
    params = {"n_targets": 8}
    mflops_row, mbit_row = estimate_row_workload(
        "atdca", timing_scene.image.cols, timing_scene.image.bands,
        params, cost,
    )
    per_iter = mflops_row / max(params["n_targets"] - 1, 1)
    rows = timing_scene.image.rows

    candidates = {
        "wea": heterogeneous_fractions(plat),
        "dlt": dlt_fractions(plat, mflops_row, mbit_row),
        "lp": optimal_iterative_fractions(
            plat, params["n_targets"], per_iter * rows, mbit_row * rows
        ),
    }

    def run_all():
        out = {}
        for name, frac in candidates.items():
            part = RowPartition(rows_from_fractions(rows, frac, min_rows=1))
            out[name] = run_parallel(
                "atdca", timing_scene.image, plat, params=params,
                cost_model=cost, partition=part,
            ).makespan
        return out

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"\nIterative mapping ablation: {times}")
    assert times["lp"] <= min(times["wea"], times["dlt"]) * 1.05


def test_ablation_halo_compensation(benchmark, cfg, timing_scene, cost):
    """MORPH with halo-compensated rows vs plain proportional rows:
    compensation must improve worker balance."""
    from repro.perf.imbalance import imbalance_of_run

    plat = fully_heterogeneous()
    params = {"n_classes": cfg.n_classes, "iterations": cfg.iterations}
    rows = timing_scene.image.rows
    weights = heterogeneous_fractions(plat)

    plain = RowPartition(rows_from_fractions(rows, weights, min_rows=1))
    compensated = RowPartition(halo_compensated_rows(rows, weights, halo=1))

    def run_both():
        out = {}
        for name, part in (("plain", plain), ("compensated", compensated)):
            run = run_parallel(
                "morph", timing_scene.image, plat, params=params,
                cost_model=cost, partition=part,
            )
            out[name] = (run.makespan, imbalance_of_run(run.sim).d_all)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nHalo compensation ablation: {results}")
    assert results["compensated"][1] < results["plain"][1]  # better balance


def test_ablation_exact_halo_redundancy(benchmark, cfg):
    """The redundancy price of bit-exact MORPH: exact overlap borders
    process measurably more rows than the paper's single-reach ones."""
    from repro.core.parallel_morph import morph_halo_depth
    from repro.morphology.structuring import square

    rows, cols, bands = 768, 8, 48
    cube = np.zeros((rows, cols, bands))
    counts = rows_from_fractions(rows, np.full(16, 1 / 16))
    part = RowPartition(counts)

    def fractions():
        out = {}
        for name, exact in (("approximate", False), ("exact", True)):
            depth = morph_halo_depth(square(3), cfg.iterations, exact=exact)
            blocks = [
                extract_halo_block(cube, *part.bounds(r), depth)
                for r in range(16)
            ]
            out[name] = redundant_fraction(blocks)
        return out

    redundancy = benchmark.pedantic(fractions, rounds=1, iterations=1)
    print(f"\nHalo redundancy: {redundancy}")
    assert redundancy["exact"] > 3 * redundancy["approximate"]
    assert redundancy["approximate"] < 0.05


def test_ablation_redundant_vs_exchange(benchmark, cfg, timing_scene, cost):
    """The paper's central MORPH design argument: redundant overlap
    computation vs per-iteration halo exchange.  Both must classify
    equally well; the exchange variant pays 2·(I_max − 1) extra message
    rounds over the (serialized, high-latency) heterogeneous links,
    which is exactly what the paper traded away."""
    from repro.cluster import SimulationEngine
    from repro.core.parallel_morph import (
        parallel_morph_exchange_program,
        parallel_morph_program,
    )
    from repro.core.runner import make_row_partition

    plat = fully_heterogeneous()
    params = {"n_classes": cfg.n_classes, "iterations": cfg.iterations}
    part = make_row_partition(plat, timing_scene.image, "morph", params,
                              cost_model=cost)
    kwargs_per_rank = [
        {"image": timing_scene.image if r == 0 else None}
        for r in range(plat.size)
    ]
    common = {"partition": part, "n_classes": cfg.n_classes,
              "iterations": cfg.iterations}

    def run_both():
        out = {}
        for name, prog in (("redundant", parallel_morph_program),
                           ("exchange", parallel_morph_exchange_program)):
            engine = SimulationEngine(plat, cost_model=cost)
            res = engine.run(prog, kwargs_per_rank=kwargs_per_rank,
                             common_kwargs=common)
            out[name] = (res.makespan, res.master_breakdown()["com"])
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nRedundant vs exchange MORPH: {results}")
    # The exchange variant moves strictly more messages ...
    assert results["exchange"][1] > results["redundant"][1]
    # ... and both land in the same time regime (the trade is modest at
    # r = 1; it is the structure, not a blowout, that the paper banks on).
    ratio = results["exchange"][0] / results["redundant"][0]
    assert 0.9 < ratio < 1.5


def test_ablation_static_vs_dynamic(benchmark):
    """Static WEA scatter vs demand-driven chunks for a one-shot
    workload on the wall-clock backend: both must produce identical
    results; dynamic pays per-chunk messaging."""
    from repro.mpi.inproc import run_inproc
    from repro.scheduling.dynamic import dynamic_master_worker

    tasks = list(range(64))

    def static_program(ctx):
        # Pre-partitioned: each rank takes a contiguous share.
        share = len(tasks) // ctx.size
        start = ctx.rank * share
        stop = start + share if ctx.rank < ctx.size - 1 else len(tasks)
        local = [t * t for t in tasks[start:stop]]
        from repro.mpi.communicator import Communicator

        gathered = Communicator(ctx).gather(local)
        if gathered is not None:
            return [v for chunk in gathered for v in chunk]
        return None

    def dynamic_program(ctx):
        return dynamic_master_worker(
            ctx, tasks if ctx.rank == 0 else None,
            lambda c, t: t * t, chunk_size=4,
        )

    def run_both():
        static = run_inproc(4, static_program).return_values[0]
        dynamic = run_inproc(4, dynamic_program).return_values[0]
        return static, dynamic

    static, dynamic = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert static == dynamic == [t * t for t in tasks]
